//! The refresh gateway: a single-flight in-flight table that coalesces
//! duplicate query-initiated refreshes across concurrent queries.
//!
//! TRAPP refreshes are idempotent *within one logical instant*: a
//! query-initiated refresh at time `T` returns the master value `V(T)` and
//! a bound re-centered at `T`. When concurrent queries' CHOOSE_REFRESH
//! plans overlap on an object at the same instant — the common case under
//! zipfian object popularity — every request after the first is pure
//! duplicate traffic.
//!
//! The gateway keeps an in-flight table keyed by [`ObjectId`]. A fetch
//! first *claims* its objects: objects nobody is fetching are claimed
//! `InFlight` and go to the source (batched per source); objects another
//! query already completed at the same instant are served from the table;
//! objects another query is *currently* fetching are awaited — the claim /
//! publish protocol guarantees the awaited result arrives without the
//! waiter holding any cache lock.
//!
//! Fetches are **submitted, then awaited**: the claim phase submits every
//! per-source batch through the transport's nonblocking
//! [`Transport::submit_refresh_batch`] API before waiting on any
//! completion, so one plan's round-trips to different sources overlap —
//! and a scatter-gathering query can submit *every shard's* slice before
//! waiting on any of them, with no per-round threads (the crate-internal
//! `begin_fetch` / `finish_fetch` halves of [`RefreshGateway::fetch`]).
//! Queries that lose the claim race park on the gateway's condvar and are
//! woken when the owning fetch's completion resolves and publishes.
//!
//! Two staleness defenses compose here. First, an update to an object
//! removes its memoized entry **and** bumps an invalidation epoch; a fetch
//! that claimed before the update refuses to memoize its (possibly
//! pre-update) result, so a stale master value is never replayed to later
//! queries. Second, every [`Refresh`] carries a source-stamped sequence
//! ([`Refresh::seq`]), so even the fetching query's own install is
//! ignored by the cache if a newer bound (e.g. the update's
//! value-initiated refresh) already landed.
//!
//! Coalescing also deliberately skips the duplicate width-narrowing a
//! repeated [`serve_refresh`](trapp_system::Source::serve_refresh) would
//! apply: one instant of query interest is one signal to the Appendix A
//! width controller, not `n` signals.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};
use trapp_system::message::Refresh;
use trapp_system::{splitmix64, Completion, Transport};
use trapp_types::{CacheId, ObjectId, SourceId, TrappError};

use crate::health::HealthTracker;

/// Default for how long an awaiting fetch waits for the in-flight owner
/// before giving up (a liveness backstop, not a correctness lever).
pub(crate) const DEFAULT_AWAIT_TIMEOUT: Duration = Duration::from_secs(5);

/// Per-round-trip fault-tolerance policy: how long one refresh round-trip
/// may take, and how many times (with jittered exponential backoff) it is
/// retried before the source is reported failed.
///
/// A round-trip that exceeds [`RetryPolicy::fetch_timeout`] is **not**
/// abandoned: its completion is parked as a *straggler* and reaped on a
/// later fetch, because a refresh the source *served* must still install
/// at the cache (the source's Refresh Monitor already narrowed its
/// tracked bound). Sequence-guarded installs make late arrivals safe.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Resubmissions after the first attempt (0 disables retry).
    pub max_retries: u32,
    /// Deadline for a single round-trip attempt.
    pub fetch_timeout: Duration,
    /// Backoff before the first retry; doubles per attempt.
    pub initial_backoff: Duration,
    /// Upper bound on the (pre-jitter) backoff.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            fetch_timeout: Duration::from_secs(2),
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

impl RetryPolicy {
    /// The sleep before retry number `attempt` (1-based): exponential in
    /// the attempt, capped, then jittered into `[0.5, 1.0)` of the cap by
    /// a deterministic hash of `salt` — deterministic for a fixed salt
    /// sequence, yet decorrelated across concurrent retriers.
    pub fn backoff(&self, attempt: u32, salt: u64) -> Duration {
        let doublings = attempt.saturating_sub(1).min(16);
        let exp = self
            .initial_backoff
            .saturating_mul(1u32 << doublings)
            .min(self.max_backoff);
        let h = splitmix64(salt ^ 0x5EED_BACC_0FF5_EED5);
        let frac = 0.5 + ((h >> 11) as f64 / (1u64 << 53) as f64) * 0.5;
        exp.mul_f64(frac)
    }
}

#[derive(Clone, Copy, Debug)]
enum Slot {
    /// Someone is fetching this object right now.
    InFlight,
    /// Fetched; the memoized refresh is valid for the entry's instant.
    Done(Refresh),
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    cache: CacheId,
    now: f64,
    slot: Slot,
}

/// The in-flight table plus invalidation bookkeeping, under one lock.
#[derive(Default)]
struct TableState {
    entries: HashMap<ObjectId, Entry>,
    /// Invalidation epoch per object: bumped by every update. A fetch that
    /// claimed at an earlier epoch must not memoize its result.
    dirty: HashMap<ObjectId, u64>,
    epoch: u64,
}

/// Per-fetch accounting returned by [`RefreshGateway::fetch`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Round-trips this fetch issued.
    pub round_trips: u64,
    /// Refreshes obtained from the table or another query's in-flight
    /// fetch — work this query did not pay for.
    pub coalesced: u64,
    /// Refreshes this fetch obtained from sources itself.
    pub forwarded: u64,
}

/// What a [`RefreshGateway::fetch`] produced. On partial failure,
/// `refreshes` still holds everything obtained before the failure — those
/// refreshes have already mutated their sources' monitor state, so the
/// caller **must install them** even when `error` is set, or cache and
/// Refresh Monitor diverge.
pub struct FetchOutcome {
    /// Every refresh obtained (order unspecified; callers install all).
    /// May include late refreshes reaped from an *earlier* fetch's
    /// timed-out round-trip — install them too (installs are seq-guarded).
    pub refreshes: Vec<Refresh>,
    /// Per-fetch accounting.
    pub stats: FetchStats,
    /// First failure, when part of the plan failed (back-compat mirror of
    /// `failures[0].1`).
    pub error: Option<TrappError>,
    /// Every per-source failure this fetch hit after exhausting retries —
    /// the input to health tracking and degraded-answer planning.
    pub failures: Vec<(SourceId, TrappError)>,
}

/// One submitted transport request a [`PendingFetch`] still has to wait
/// on. Carries enough context to resubmit the request on retry.
enum PendingReply {
    /// A batched per-source round-trip.
    Batch {
        source: SourceId,
        objects: Vec<ObjectId>,
        completion: Completion<Vec<Refresh>>,
    },
    /// A per-object round-trip (the seed's baseline mode).
    Single {
        source: SourceId,
        object: ObjectId,
        completion: Completion<Refresh>,
    },
}

/// A round-trip that outlived its deadline: the completion is parked here
/// (with the context needed to publish) and polled on later fetches, so a
/// refresh the source eventually serves still installs at the cache.
enum Straggler {
    /// A timed-out batched round-trip.
    Batch {
        cache: CacheId,
        now: f64,
        claim_epoch: u64,
        completion: Completion<Vec<Refresh>>,
    },
    /// A timed-out per-object round-trip.
    Single {
        cache: CacheId,
        now: f64,
        claim_epoch: u64,
        completion: Completion<Refresh>,
    },
}

/// Outcome of awaiting another query's in-flight fetch.
enum AwaitResult {
    /// The owner published the refresh.
    Done(Refresh),
    /// The wait expired with the owner's round-trip still pending.
    TimedOut,
    /// The owner aborted or its entry was invalidated; nobody is fetching
    /// this object anymore.
    Gone,
}

/// A fetch whose requests are on the wire but not yet awaited — the
/// product of [`RefreshGateway::begin_fetch`], consumed by
/// [`RefreshGateway::finish_fetch`] on the same gateway.
pub(crate) struct PendingFetch {
    cache: CacheId,
    now: f64,
    claim_epoch: u64,
    /// Refreshes already in hand from the in-flight table.
    out: Vec<Refresh>,
    stats: FetchStats,
    /// Objects this fetch claimed `InFlight` (for failure cleanup).
    claimed: Vec<ObjectId>,
    /// Submitted requests, in plan order.
    waits: Vec<PendingReply>,
    /// Objects another query is fetching; awaited in the finish phase.
    to_await: Vec<(SourceId, ObjectId)>,
    /// Wall-clock instant the whole fetch must not wait past (a query
    /// `DEADLINE`): waits are capped to the remaining budget, retries stop
    /// once it passes, and expired round-trips park as stragglers exactly
    /// like [`RetryPolicy::fetch_timeout`] expiries. `None` leaves only
    /// the per-round-trip policy in force.
    deadline: Option<Instant>,
}

/// A single-flight refresh coalescing layer over a [`Transport`]. See the
/// module docs.
pub struct RefreshGateway<T> {
    inner: T,
    enabled: bool,
    table: Mutex<TableState>,
    done: Condvar,
    coalesced: AtomicU64,
    forwarded: AtomicU64,
    /// How long to wait for another query's in-flight fetch.
    await_timeout: Duration,
    /// Per-round-trip deadline/retry policy.
    retry: RetryPolicy,
    /// Per-source circuit breaker fed by final round-trip outcomes.
    health: Arc<HealthTracker>,
    /// Monotonic salt for deterministic backoff jitter.
    attempt_salt: AtomicU64,
    /// Timed-out round-trips still owed an install; reaped by later
    /// fetches.
    stragglers: Mutex<Vec<Straggler>>,
}

impl<T: Transport> RefreshGateway<T> {
    /// Wraps `inner`; `enabled = false` turns the gateway into a pure
    /// pass-through (the measurable baseline). Uses default await/retry
    /// policies and a private health tracker.
    pub fn new(inner: T, enabled: bool) -> RefreshGateway<T> {
        RefreshGateway::with_policy(
            inner,
            enabled,
            DEFAULT_AWAIT_TIMEOUT,
            RetryPolicy::default(),
            Arc::new(HealthTracker::default()),
        )
    }

    /// Wraps `inner` with explicit await-timeout, retry, and health
    /// wiring — the service layer's constructor.
    pub(crate) fn with_policy(
        inner: T,
        enabled: bool,
        await_timeout: Duration,
        retry: RetryPolicy,
        health: Arc<HealthTracker>,
    ) -> RefreshGateway<T> {
        RefreshGateway {
            inner,
            enabled,
            table: Mutex::new(TableState::default()),
            done: Condvar::new(),
            coalesced: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            await_timeout,
            retry,
            health,
            attempt_salt: AtomicU64::new(0),
            stragglers: Mutex::new(Vec::new()),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Refreshes served from the in-flight table instead of a source,
    /// across all fetches.
    pub fn refreshes_coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Refreshes that went through to a source.
    pub fn refreshes_forwarded(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// Fetches refreshes for a whole plan, `plan` listing each source's
    /// objects. Claims de-duplicate against concurrent fetches; `batch`
    /// chooses one round-trip per source versus one per object (the seed's
    /// baseline).
    ///
    /// Must be called *without* holding the cache lock: the whole point is
    /// that the source round-trips of concurrent queries overlap.
    pub fn fetch(
        &self,
        cache: CacheId,
        now: f64,
        plan: &[(SourceId, Vec<ObjectId>)],
        batch: bool,
    ) -> FetchOutcome {
        self.finish_fetch(self.begin_fetch(cache, now, plan, batch, None))
    }

    /// The submit half of a fetch: claims the plan's objects in the
    /// in-flight table and submits every per-source request through the
    /// transport's nonblocking API — then returns *without waiting*, so a
    /// caller holding several plans (one per shard, say) can submit them
    /// all before waiting on any. Must be paired with
    /// [`RefreshGateway::finish_fetch`] on the **same** gateway, promptly:
    /// the claims it holds block concurrent fetches of the same objects
    /// until finished.
    pub(crate) fn begin_fetch(
        &self,
        cache: CacheId,
        now: f64,
        plan: &[(SourceId, Vec<ObjectId>)],
        batch: bool,
        deadline: Option<Instant>,
    ) -> PendingFetch {
        let mut stats = FetchStats::default();
        let mut out: Vec<Refresh> = Vec::new();

        // Claim phase: table hits fill `out`; unclaimed objects become
        // ours to fetch; objects in flight elsewhere are awaited later.
        let mut to_fetch: Vec<(SourceId, Vec<ObjectId>)> = Vec::new();
        let mut to_await: Vec<(SourceId, ObjectId)> = Vec::new();
        let claim_epoch;
        {
            let mut state = self.table.lock();
            claim_epoch = state.epoch;
            for (source, objects) in plan {
                let mut mine: Vec<ObjectId> = Vec::new();
                for &object in objects {
                    if mine.contains(&object) {
                        continue; // duplicate within the plan itself
                    }
                    if !self.enabled {
                        mine.push(object);
                        continue;
                    }
                    match state.entries.get(&object) {
                        Some(e) if e.cache == cache && e.now == now => match e.slot {
                            Slot::Done(refresh) => {
                                out.push(refresh);
                                stats.coalesced += 1;
                            }
                            Slot::InFlight => to_await.push((*source, object)),
                        },
                        _ => {
                            state.entries.insert(
                                object,
                                Entry {
                                    cache,
                                    now,
                                    slot: Slot::InFlight,
                                },
                            );
                            mine.push(object);
                        }
                    }
                }
                if !mine.is_empty() {
                    to_fetch.push((*source, mine));
                }
            }
        }

        // Submit phase — no locks held, nothing awaited yet: all of this
        // plan's round-trips go on the wire together.
        let mut claimed: Vec<ObjectId> = Vec::new();
        let mut waits: Vec<PendingReply> = Vec::new();
        for (source, objects) in to_fetch {
            claimed.extend(objects.iter().copied());
            if batch {
                let completion =
                    self.inner
                        .submit_refresh_batch(source, cache, objects.clone(), now);
                waits.push(PendingReply::Batch {
                    source,
                    objects,
                    completion,
                });
            } else {
                for object in objects {
                    let completion = self.inner.submit_refresh(source, cache, object, now);
                    waits.push(PendingReply::Single {
                        source,
                        object,
                        completion,
                    });
                }
            }
        }
        PendingFetch {
            cache,
            now,
            claim_epoch,
            out,
            stats,
            claimed,
            waits,
            to_await,
            deadline,
        }
    }

    /// The wait half of a fetch: reaps stragglers from earlier timed-out
    /// fetches, blocks (with per-round-trip deadline + retry) on the
    /// submitted completions, publishes what arrived (waking parked
    /// waiters), releases failed claims, and awaits objects other queries
    /// were fetching.
    pub(crate) fn finish_fetch(&self, pending: PendingFetch) -> FetchOutcome {
        let PendingFetch {
            cache,
            now,
            claim_epoch,
            mut out,
            mut stats,
            claimed,
            waits,
            to_await,
            deadline,
        } = pending;

        // Reap stragglers first: earlier fetches' timed-out round-trips
        // whose refreshes — if served since — must still install somewhere.
        self.reap_stragglers(&mut out, &mut stats);

        // Wait phase. Every submitted request is waited on even after a
        // failure: the source may have served it already (narrowing its
        // tracked bound), and dropping a served refresh would
        // desynchronize cache and Refresh Monitor. A round-trip that
        // exceeds its deadline is parked as a straggler and retried.
        let mut fetched: Vec<Refresh> = Vec::new();
        let mut failures: Vec<(SourceId, TrappError)> = Vec::new();
        for wait in waits {
            match wait {
                PendingReply::Batch {
                    source,
                    objects,
                    completion,
                } => match self.wait_batch_retrying(
                    cache,
                    now,
                    claim_epoch,
                    source,
                    &objects,
                    completion,
                    &mut stats,
                    deadline,
                ) {
                    Ok(rs) => fetched.extend(rs),
                    Err(e) => failures.push((source, e)),
                },
                PendingReply::Single {
                    source,
                    object,
                    completion,
                } => match self.wait_single_retrying(
                    cache,
                    now,
                    claim_epoch,
                    source,
                    object,
                    completion,
                    &mut stats,
                    deadline,
                ) {
                    Ok(r) => fetched.push(r),
                    Err(e) => failures.push((source, e)),
                },
            }
        }

        // Publish what we fetched and release every unfulfilled claim —
        // *before* awaiting or returning, so no waiter deadlocks on us.
        stats.forwarded += fetched.len() as u64;
        if self.enabled {
            let mut state = self.table.lock();
            for &refresh in &fetched {
                publish_locked(&mut state, cache, now, claim_epoch, refresh);
            }
            if !failures.is_empty() {
                for &object in &claimed {
                    if !fetched.iter().any(|r| r.object == object) {
                        abort_locked(&mut state, cache, now, object);
                    }
                }
            }
            drop(state);
            self.done.notify_all();
        }
        out.extend(fetched);

        // Await phase: collect results other queries are fetching. If the
        // owner aborted (entry gone) we fetch ourselves; if the wait
        // *timed out* we report a typed timeout instead of silently
        // re-fetching — the owner's round-trip is still pending and piling
        // a duplicate fetch onto a slow source only makes things worse.
        if failures.is_empty() {
            for (source, object) in to_await {
                // A query deadline caps the await just like the waits
                // above: no point parking past the instant the caller
                // will refuse the answer anyway.
                let await_cap = deadline
                    .map(|d| {
                        d.saturating_duration_since(Instant::now())
                            .min(self.await_timeout)
                    })
                    .unwrap_or(self.await_timeout);
                match self.await_done(cache, now, object, await_cap) {
                    AwaitResult::Done(refresh) => {
                        out.push(refresh);
                        stats.coalesced += 1;
                    }
                    AwaitResult::TimedOut => {
                        self.health.record_failure(source);
                        failures.push((
                            source,
                            TrappError::Timeout {
                                source,
                                waited_ms: await_cap.as_millis() as u64,
                            },
                        ));
                        break;
                    }
                    AwaitResult::Gone => {
                        match self.inner.request_refresh(source, cache, object, now) {
                            Ok(refresh) => {
                                stats.round_trips += 1;
                                stats.forwarded += 1;
                                self.health.record_success(source);
                                if self.enabled {
                                    let mut state = self.table.lock();
                                    publish_locked(&mut state, cache, now, claim_epoch, refresh);
                                    drop(state);
                                    self.done.notify_all();
                                }
                                out.push(refresh);
                            }
                            Err(e) => {
                                self.health.record_failure(source);
                                failures.push((source, e));
                                break;
                            }
                        }
                    }
                }
            }
        }

        self.coalesced.fetch_add(stats.coalesced, Ordering::Relaxed);
        self.forwarded.fetch_add(stats.forwarded, Ordering::Relaxed);
        FetchOutcome {
            refreshes: out,
            stats,
            error: failures.first().map(|(_, e)| e.clone()),
            failures,
        }
    }

    /// Polls every parked straggler: resolved successes are published and
    /// appended to `out` (the caller installs them — the late-install
    /// half of the safety invariant), resolved failures are dropped, and
    /// still-pending completions go back in the park.
    fn reap_stragglers(&self, out: &mut Vec<Refresh>, stats: &mut FetchStats) {
        let parked = std::mem::take(&mut *self.stragglers.lock());
        if parked.is_empty() {
            return;
        }
        let mut still_pending: Vec<Straggler> = Vec::new();
        let mut landed: Vec<(CacheId, f64, u64, Vec<Refresh>)> = Vec::new();
        for straggler in parked {
            match straggler {
                Straggler::Batch {
                    cache,
                    now,
                    claim_epoch,
                    completion,
                } => match completion.poll() {
                    Ok(Ok(rs)) => landed.push((cache, now, claim_epoch, rs)),
                    Ok(Err(_)) => {}
                    Err(completion) => still_pending.push(Straggler::Batch {
                        cache,
                        now,
                        claim_epoch,
                        completion,
                    }),
                },
                Straggler::Single {
                    cache,
                    now,
                    claim_epoch,
                    completion,
                } => match completion.poll() {
                    Ok(Ok(r)) => landed.push((cache, now, claim_epoch, vec![r])),
                    Ok(Err(_)) => {}
                    Err(completion) => still_pending.push(Straggler::Single {
                        cache,
                        now,
                        claim_epoch,
                        completion,
                    }),
                },
            }
        }
        if !still_pending.is_empty() {
            self.stragglers.lock().extend(still_pending);
        }
        for (cache, now, claim_epoch, rs) in landed {
            stats.forwarded += rs.len() as u64;
            if self.enabled {
                let mut state = self.table.lock();
                for &refresh in &rs {
                    publish_locked(&mut state, cache, now, claim_epoch, refresh);
                }
                drop(state);
                self.done.notify_all();
            }
            out.extend(rs);
        }
    }

    /// The wait budget for one attempt: the per-round-trip policy, capped
    /// by whatever remains of the query deadline. A nonzero floor keeps a
    /// just-expired deadline from turning into a zero-length poll that
    /// misses an already-resolved completion.
    fn attempt_timeout(&self, deadline: Option<Instant>) -> Duration {
        match deadline {
            None => self.retry.fetch_timeout,
            Some(d) => d
                .saturating_duration_since(Instant::now())
                .min(self.retry.fetch_timeout)
                .max(Duration::from_micros(100)),
        }
    }

    /// Whether the query deadline has passed — retries stop then: there
    /// is no budget left for a backoff plus another round-trip.
    fn deadline_expired(deadline: Option<Instant>) -> bool {
        deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Waits on one batched round-trip with the retry policy: deadline
    /// expiry parks the completion as a straggler and resubmits after a
    /// jittered backoff; a hard error resubmits without parking. The final
    /// outcome (not each attempt) feeds the health tracker. A query
    /// deadline caps each wait and suppresses retries once it passes.
    #[allow(clippy::too_many_arguments)]
    fn wait_batch_retrying(
        &self,
        cache: CacheId,
        now: f64,
        claim_epoch: u64,
        source: SourceId,
        objects: &[ObjectId],
        completion: Completion<Vec<Refresh>>,
        stats: &mut FetchStats,
        deadline: Option<Instant>,
    ) -> Result<Vec<Refresh>, TrappError> {
        let mut completion = completion;
        let mut attempt: u32 = 0;
        let mut waited = Duration::ZERO;
        loop {
            let timeout = self.attempt_timeout(deadline);
            let failure = match completion.wait_timeout(timeout) {
                Ok(Ok(rs)) => {
                    stats.round_trips += 1;
                    self.health.record_success(source);
                    return Ok(rs);
                }
                Ok(Err(e)) => e,
                Err(pending) => {
                    waited += timeout;
                    self.stragglers.lock().push(Straggler::Batch {
                        cache,
                        now,
                        claim_epoch,
                        completion: pending,
                    });
                    TrappError::Timeout {
                        source,
                        waited_ms: waited.as_millis() as u64,
                    }
                }
            };
            if attempt >= self.retry.max_retries || Self::deadline_expired(deadline) {
                self.health.record_failure(source);
                return Err(failure);
            }
            attempt += 1;
            let salt = self.attempt_salt.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.retry.backoff(attempt, salt));
            completion = self
                .inner
                .submit_refresh_batch(source, cache, objects.to_vec(), now);
        }
    }

    /// [`RefreshGateway::wait_batch_retrying`], per-object flavor.
    #[allow(clippy::too_many_arguments)]
    fn wait_single_retrying(
        &self,
        cache: CacheId,
        now: f64,
        claim_epoch: u64,
        source: SourceId,
        object: ObjectId,
        completion: Completion<Refresh>,
        stats: &mut FetchStats,
        deadline: Option<Instant>,
    ) -> Result<Refresh, TrappError> {
        let mut completion = completion;
        let mut attempt: u32 = 0;
        let mut waited = Duration::ZERO;
        loop {
            let timeout = self.attempt_timeout(deadline);
            let failure = match completion.wait_timeout(timeout) {
                Ok(Ok(r)) => {
                    stats.round_trips += 1;
                    self.health.record_success(source);
                    return Ok(r);
                }
                Ok(Err(e)) => e,
                Err(pending) => {
                    waited += timeout;
                    self.stragglers.lock().push(Straggler::Single {
                        cache,
                        now,
                        claim_epoch,
                        completion: pending,
                    });
                    TrappError::Timeout {
                        source,
                        waited_ms: waited.as_millis() as u64,
                    }
                }
            };
            if attempt >= self.retry.max_retries || Self::deadline_expired(deadline) {
                self.health.record_failure(source);
                return Err(failure);
            }
            attempt += 1;
            let salt = self.attempt_salt.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(self.retry.backoff(attempt, salt));
            completion = self.inner.submit_refresh(source, cache, object, now);
        }
    }

    /// Waits for another fetch to publish `object`, up to `timeout`.
    fn await_done(
        &self,
        cache: CacheId,
        now: f64,
        object: ObjectId,
        timeout: Duration,
    ) -> AwaitResult {
        let mut state = self.table.lock();
        loop {
            match state.entries.get(&object) {
                Some(e) if e.cache == cache && e.now == now => match e.slot {
                    Slot::Done(refresh) => return AwaitResult::Done(refresh),
                    Slot::InFlight => {
                        if self.done.wait_for(&mut state, timeout) {
                            return AwaitResult::TimedOut;
                        }
                    }
                },
                // Entry gone (owner aborted / invalidated) or replaced by
                // another instant: the caller fetches it itself.
                _ => return AwaitResult::Gone,
            }
        }
    }

    /// Removes memoized entries and bumps the invalidation epoch for the
    /// given objects — the pre-write half of every update path.
    fn invalidate(&self, objects: impl Iterator<Item = ObjectId>) {
        let mut state = self.table.lock();
        for object in objects {
            state.epoch += 1;
            let epoch = state.epoch;
            state.dirty.insert(object, epoch);
            if let Some(e) = state.entries.get(&object) {
                if matches!(e.slot, Slot::Done(_)) {
                    state.entries.remove(&object);
                }
            }
        }
    }

    /// Serves one object through the same claim/await/publish protocol —
    /// used by the locked fallback execution path via [`Transport`].
    fn fetch_one(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError> {
        let outcome = self.fetch(cache, now, &[(source, vec![object])], false);
        if let Some(e) = outcome.error {
            return Err(e);
        }
        outcome
            .refreshes
            .into_iter()
            .next()
            .ok_or_else(|| TrappError::Internal("gateway returned empty fetch".into()))
    }
}

/// Writes a `Done` entry — unless the object was invalidated after the
/// claim (an update landed mid-fetch: the result may predate it and must
/// not be replayed) or a different instant owns the slot. When
/// suppressed, our own `InFlight` claim is released so waiters re-fetch.
fn publish_locked(
    state: &mut TableState,
    cache: CacheId,
    now: f64,
    claim_epoch: u64,
    refresh: Refresh,
) {
    if state
        .dirty
        .get(&refresh.object)
        .is_some_and(|&e| e > claim_epoch)
    {
        abort_locked(state, cache, now, refresh.object);
        return;
    }
    match state.entries.get(&refresh.object) {
        // Never clobber an entry from a different instant or cache — that
        // fetch owns the slot now.
        Some(e) if !(e.cache == cache && e.now == now) => {}
        _ => {
            state.entries.insert(
                refresh.object,
                Entry {
                    cache,
                    now,
                    slot: Slot::Done(refresh),
                },
            );
        }
    }
}

/// Removes our own `InFlight` claim (failed or invalidated fetch).
fn abort_locked(state: &mut TableState, cache: CacheId, now: f64, object: ObjectId) {
    if let Some(e) = state.entries.get(&object) {
        if e.cache == cache && e.now == now && matches!(e.slot, Slot::InFlight) {
            state.entries.remove(&object);
        }
    }
}

impl<T: Transport> Transport for RefreshGateway<T> {
    fn request_refresh(
        &self,
        source: SourceId,
        cache: CacheId,
        object: ObjectId,
        now: f64,
    ) -> Result<Refresh, TrappError> {
        self.fetch_one(source, cache, object, now)
    }

    fn request_refresh_batch(
        &self,
        source: SourceId,
        cache: CacheId,
        objects: &[ObjectId],
        now: f64,
    ) -> Result<Vec<Refresh>, TrappError> {
        let outcome = self.fetch(cache, now, &[(source, objects.to_vec())], true);
        // Single-source batches are atomic at the source, so on error
        // nothing was mutated and plain Err is safe here.
        if let Some(e) = outcome.error {
            return Err(e);
        }
        // Restore request order (fetch() does not guarantee one).
        let by_object: HashMap<ObjectId, Refresh> = outcome
            .refreshes
            .into_iter()
            .map(|r| (r.object, r))
            .collect();
        objects
            .iter()
            .map(|o| {
                by_object.get(o).copied().ok_or_else(|| {
                    TrappError::RefreshFailed(format!("source {source} did not return {o}"))
                })
            })
            .collect()
    }

    fn apply_update(
        &self,
        source: SourceId,
        object: ObjectId,
        value: f64,
        now: f64,
    ) -> Result<Vec<(CacheId, Refresh)>, TrappError> {
        // Invalidate *before* the write reaches the source: remove any
        // memoized result and bump the epoch so an in-flight fetch that
        // claimed earlier refuses to memoize its (possibly pre-update)
        // result. The fetcher's own install is ordered by `Refresh::seq`.
        self.invalidate(std::iter::once(object));
        self.inner.apply_update(source, object, value, now)
    }

    fn submit_update_batch(
        &self,
        source: SourceId,
        updates: Vec<(ObjectId, f64)>,
        now: f64,
    ) -> Completion<Vec<(CacheId, Refresh)>> {
        // Same invalidation as `apply_update`, for the whole batch, before
        // any write reaches the source — a fetch that claimed before *any*
        // update in the batch must not memoize its result.
        self.invalidate(updates.iter().map(|&(object, _)| object));
        self.inner.submit_update_batch(source, updates, now)
    }

    fn messages(&self) -> u64 {
        self.inner.messages()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use trapp_bounds::BoundShape;
    use trapp_system::{ChannelTransport, DirectTransport, Source};

    fn transport() -> DirectTransport {
        let mut s = Source::new(SourceId::new(1), BoundShape::Sqrt);
        s.register_object(ObjectId::new(1), 10.0).unwrap();
        s.register_object(ObjectId::new(2), 20.0).unwrap();
        let mut t = DirectTransport::new();
        let arc = t.add_source(s);
        let mut s = arc.lock();
        s.subscribe(CacheId::new(1), ObjectId::new(1), 1.0, 0.0)
            .unwrap();
        s.subscribe(CacheId::new(1), ObjectId::new(2), 1.0, 0.0)
            .unwrap();
        drop(s);
        t
    }

    #[test]
    fn duplicate_refresh_at_same_instant_is_coalesced() {
        let g = RefreshGateway::new(transport(), true);
        let a = g
            .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        let b = g
            .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        assert_eq!(a.value, b.value);
        assert_eq!(g.messages(), 1, "second refresh must not reach the source");
        assert_eq!(g.refreshes_coalesced(), 1);
        assert_eq!(g.refreshes_forwarded(), 1);
    }

    #[test]
    fn different_instant_misses() {
        let g = RefreshGateway::new(transport(), true);
        g.request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        g.request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 2.0)
            .unwrap();
        assert_eq!(g.messages(), 2);
        assert_eq!(g.refreshes_coalesced(), 0);
    }

    #[test]
    fn update_invalidates_entry() {
        let g = RefreshGateway::new(transport(), true);
        let a = g
            .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        assert_eq!(a.value, 10.0);
        g.apply_update(SourceId::new(1), ObjectId::new(1), 99.0, 1.0)
            .unwrap();
        let b = g
            .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        assert_eq!(b.value, 99.0, "post-update refresh must see the new master");
        assert_eq!(g.refreshes_coalesced(), 0);
    }

    #[test]
    fn batch_mixes_hits_and_misses() {
        let g = RefreshGateway::new(transport(), true);
        g.request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        let rs = g
            .request_refresh_batch(
                SourceId::new(1),
                CacheId::new(1),
                &[ObjectId::new(1), ObjectId::new(2)],
                1.0,
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].value, 10.0);
        assert_eq!(rs[1].value, 20.0);
        // One single-object message, then one batch message for the miss.
        assert_eq!(g.messages(), 2);
        assert_eq!(g.refreshes_coalesced(), 1);

        // A fully-hit batch costs zero messages.
        let rs = g
            .request_refresh_batch(
                SourceId::new(1),
                CacheId::new(1),
                &[ObjectId::new(1), ObjectId::new(2)],
                1.0,
            )
            .unwrap();
        assert_eq!(rs.len(), 2);
        assert_eq!(g.messages(), 2);
    }

    #[test]
    fn disabled_gateway_is_a_pass_through() {
        let g = RefreshGateway::new(transport(), false);
        g.request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        g.request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        assert_eq!(g.messages(), 2);
        assert_eq!(g.refreshes_coalesced(), 0);
    }

    /// Many threads fetching the same object at the same instant: exactly
    /// one round-trip, everyone gets the same value — the single-flight
    /// property under real concurrency.
    #[test]
    fn concurrent_fetches_single_flight() {
        let g = Arc::new(RefreshGateway::new(transport(), true));
        let mut handles = Vec::new();
        for _ in 0..8 {
            let g = g.clone();
            handles.push(std::thread::spawn(move || {
                let outcome = g.fetch(
                    CacheId::new(1),
                    1.0,
                    &[(SourceId::new(1), vec![ObjectId::new(1)])],
                    true,
                );
                assert!(outcome.error.is_none());
                outcome
            }));
        }
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for outcome in &results {
            assert_eq!(outcome.refreshes.len(), 1);
            assert_eq!(outcome.refreshes[0].value, 10.0);
        }
        assert_eq!(g.messages(), 1, "eight fetches, one round-trip");
        let total_coalesced: u64 = results.iter().map(|o| o.stats.coalesced).sum();
        assert_eq!(total_coalesced, 7);
    }

    #[test]
    fn failed_fetch_aborts_claim_for_others() {
        let g = RefreshGateway::new(transport(), true);
        // Unknown object: the fetch fails and must clean up its claim so a
        // later valid fetch is not stuck awaiting forever.
        let outcome = g.fetch(
            CacheId::new(1),
            1.0,
            &[(SourceId::new(1), vec![ObjectId::new(99)])],
            true,
        );
        assert!(outcome.error.is_some());
        let outcome = g.fetch(
            CacheId::new(1),
            1.0,
            &[(SourceId::new(1), vec![ObjectId::new(1)])],
            true,
        );
        assert!(outcome.error.is_none());
        assert_eq!(outcome.refreshes.len(), 1);
        assert_eq!(outcome.stats.coalesced, 0);
    }

    /// Partial failure keeps the refreshes fetched before the failing
    /// request so the caller can install them (their sources already
    /// narrowed their tracked bounds).
    #[test]
    fn partial_failure_returns_earlier_refreshes() {
        let g = RefreshGateway::new(transport(), true);
        let outcome = g.fetch(
            CacheId::new(1),
            1.0,
            &[
                (SourceId::new(1), vec![ObjectId::new(1)]),
                (SourceId::new(1), vec![ObjectId::new(99)]), // unknown
            ],
            true,
        );
        assert!(outcome.error.is_some());
        assert_eq!(outcome.refreshes.len(), 1, "object 1 was fetched and kept");
        assert_eq!(outcome.refreshes[0].object, ObjectId::new(1));
        assert_eq!(outcome.stats.forwarded, 1);
    }

    /// An update racing an in-flight fetch: the fetch's result must not be
    /// memoized (it may predate the update), so the next query at the same
    /// instant sees the post-update master.
    #[test]
    fn update_racing_inflight_fetch_is_not_replayed() {
        // 50ms source latency so the fetch is reliably in flight when the
        // update arrives.
        let mut transport = ChannelTransport::new(Duration::from_millis(50));
        let mut s = Source::new(SourceId::new(1), BoundShape::Sqrt);
        s.register_object(ObjectId::new(1), 10.0).unwrap();
        s.subscribe(CacheId::new(1), ObjectId::new(1), 1.0, 0.0)
            .unwrap();
        transport.add_source(s);
        let g = Arc::new(RefreshGateway::new(transport, true));

        let g2 = g.clone();
        let fetcher = std::thread::spawn(move || {
            g2.fetch(
                CacheId::new(1),
                1.0,
                &[(SourceId::new(1), vec![ObjectId::new(1)])],
                true,
            )
        });
        // Let the fetch claim + enter the source queue, then update.
        std::thread::sleep(Duration::from_millis(10));
        g.apply_update(SourceId::new(1), ObjectId::new(1), 77.0, 1.0)
            .unwrap();
        let outcome = fetcher.join().unwrap();
        assert!(outcome.error.is_none());

        // Whatever the fetch returned, a *new* request at the same instant
        // must reach the source and see the updated master — the racing
        // result must not have been memoized.
        let r = g
            .request_refresh(SourceId::new(1), CacheId::new(1), ObjectId::new(1), 1.0)
            .unwrap();
        assert_eq!(r.value, 77.0, "stale master replayed after update");
    }
}
