//! # trapp-server
//!
//! A concurrent multi-client query service over the TRAPP replication
//! substrate — the serving layer the paper's single-cache, one-query-at-a-
//! time loop (§3–§4) grows into under heavy traffic.
//!
//! Clients submit TRAPP/AG SQL with precision constraints from many
//! threads; a worker pool executes them against one [`CacheNode`] behind
//! two traffic-reduction mechanisms:
//!
//! * **batched source round-trips** — each CHOOSE_REFRESH plan issues one
//!   [`Transport::request_refresh_batch`] per *source* instead of one
//!   round-trip per *object*;
//! * **refresh coalescing** — a shared [`RefreshGateway`] in-flight table
//!   lets queries overlapping on an object at the same logical instant
//!   share a single refresh, with per-query stats recording the refreshes
//!   saved.
//!
//! ```
//! use trapp_server::{ServiceBuilder, ServiceConfig};
//! use trapp_storage::{ColumnDef, Schema, Table};
//! use trapp_types::{BoundedValue, SourceId, Value, ValueType};
//!
//! let schema = Schema::new(vec![
//!     ColumnDef::exact("name", ValueType::Str),
//!     ColumnDef::bounded_float("load"),
//! ])
//! .unwrap();
//! let service = ServiceBuilder::new()
//!     .table(Table::new("nodes", schema))
//!     .row(
//!         "nodes",
//!         SourceId::new(1),
//!         vec![
//!             BoundedValue::Exact(Value::Str("a".into())),
//!             BoundedValue::exact_f64(42.0).unwrap(),
//!         ],
//!     )
//!     .config(ServiceConfig::default())
//!     .build_direct()
//!     .unwrap();
//!
//! let reply = service.query("SELECT SUM(load) WITHIN 1 FROM nodes").unwrap();
//! assert!(reply.result.satisfied);
//! ```
//!
//! [`CacheNode`]: trapp_system::CacheNode
//! [`Transport::request_refresh_batch`]: trapp_system::Transport::request_refresh_batch

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod gateway;
pub mod service;

pub use gateway::RefreshGateway;
pub use service::{
    QueryService, QueryTicket, ServiceBuilder, ServiceConfig, ServiceReply, ServiceStats,
};
