//! # trapp-server
//!
//! A concurrent, **sharded** multi-client query service over the TRAPP
//! replication substrate — the serving layer the paper's single-cache,
//! one-query-at-a-time loop (§3–§4) grows into under heavy traffic.
//!
//! Clients submit TRAPP/AG SQL with precision constraints from many
//! threads. A worker pool executes them against
//! [`ServiceConfig::shards`] independent [`CacheNode`]s whose group key
//! space is hash-partitioned by a [`ShardRouter`]:
//!
//! * **group-routed queries** (`… WHERE grp = 7 …`) run entirely on one
//!   shard — queries for different groups share no lock, which is what
//!   lets throughput scale with the shard count;
//! * **shard-spanning queries** scatter to every shard for partial
//!   aggregate inputs, merge them via [`trapp_core::merge`] into exactly
//!   the input a single cache would hold, plan CHOOSE_REFRESH globally,
//!   and fetch every shard's slice of the plan concurrently — so the
//!   sharded answer is *bit-equivalent* to the single-cache answer;
//! * within each shard, the two traffic reducers from the single-cache
//!   service still apply: **batched source round-trips** (one
//!   [`Transport::request_refresh_batch`] per source per plan) and
//!   **refresh coalescing** (a per-shard single-flight [`RefreshGateway`]
//!   in-flight table).
//!
//! See `ARCHITECTURE.md` at the repository root for the full data-flow
//! walkthrough.
//!
//! ```
//! use trapp_server::{ServiceBuilder, ServiceConfig};
//! use trapp_storage::{ColumnDef, Schema, Table};
//! use trapp_types::{BoundedValue, SourceId, Value, ValueType};
//!
//! let schema = Schema::new(vec![
//!     ColumnDef::exact("grp", ValueType::Int),
//!     ColumnDef::bounded_float("load"),
//! ])
//! .unwrap();
//! let mut builder = ServiceBuilder::new()
//!     .table(Table::new("metrics", schema))
//!     .partition_by("grp") // rows place on shards by hash of `grp`
//!     .config(ServiceConfig {
//!         shards: 4,
//!         ..ServiceConfig::default()
//!     });
//! for group in 0..8i64 {
//!     builder = builder.row(
//!         "metrics",
//!         SourceId::new(1 + (group as u64) % 2),
//!         vec![
//!             BoundedValue::Exact(Value::Int(group)),
//!             BoundedValue::exact_f64(10.0 * group as f64).unwrap(),
//!         ],
//!     );
//! }
//! let service = builder.build_direct().unwrap();
//!
//! // Pinned to group 3: routed to the one shard that owns it.
//! let reply = service
//!     .query("SELECT SUM(load) WITHIN 1 FROM metrics WHERE grp = 3")
//!     .unwrap();
//! assert!(reply.result.satisfied);
//!
//! // No group pin: scatter-gathered across all four shards and merged.
//! let reply = service.query("SELECT SUM(load) WITHIN 1 FROM metrics").unwrap();
//! assert!(reply.result.satisfied);
//! assert_eq!(service.stats().scatter_queries, 1);
//! ```
//!
//! [`CacheNode`]: trapp_system::CacheNode
//! [`Transport::request_refresh_batch`]: trapp_system::Transport::request_refresh_batch

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod admission;
pub mod gateway;
pub mod health;
pub mod router;
pub mod service;

pub use admission::{Admission, AdmissionConfig, AdmissionController};
pub use gateway::{RefreshGateway, RetryPolicy};
pub use health::{BreakerState, HealthConfig, HealthTracker};
pub use router::{Route, ShardRouter};
pub use service::{
    default_fetch_pool_size, DegradationPolicy, DegradedInfo, QueryService, QueryTicket,
    ServiceBuilder, ServiceConfig, ServiceReply, ServiceStats,
};
// The grouped half of [`ServiceReply`], re-exported for callers.
pub use trapp_core::group_by::{GroupKey, GroupResult};
