//! Admission control: the service's first line of overload defense.
//!
//! TRAPP's own load-shedding knob is *precision* — a wider bound needs
//! fewer refreshes (§6: CHOOSE_REFRESH's cost falls monotonically as `R`
//! grows). The [`AdmissionController`] turns that knob from the front
//! door, watching the live query-queue depth and walking a three-step
//! ladder as depth crosses its watermarks:
//!
//! 1. **below `widen_watermark`** — admit untouched;
//! 2. **at/above `widen_watermark`** — admit, but widen the query's
//!    `WITHIN` constraint by [`AdmissionConfig::widen_factor`] (the reply
//!    carries [`DegradedInfo`](crate::DegradedInfo) naming the original
//!    constraint), and boost the shared fetch pool to
//!    [`AdmissionConfig::burst_pool_threads`] so the backlog drains with
//!    more fetch parallelism;
//! 3. **at/above `reject_watermark`** — shed: the query is refused with a
//!    typed [`TrappError::Overloaded`] before any work is started.
//!
//! Both watermarks default to "off" (`u64::MAX`): an unconfigured service
//! behaves exactly as before. Depth accounting is shared with the worker
//! pool — [`AdmissionController::admit`] increments at submit,
//! [`AdmissionController::dequeued`] decrements at worker pickup — so the
//! gauge is the number of queries waiting for a worker, not in-flight
//! executions.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;
use trapp_system::FetchPool;
use trapp_types::TrappError;

/// Watermarks and reactions for the admission ladder. All knobs default
/// to "off", so an unconfigured service admits everything untouched.
#[derive(Clone, Copy, Debug)]
pub struct AdmissionConfig {
    /// Queue depth at or above which admitted queries have their `WITHIN`
    /// constraint widened by [`AdmissionConfig::widen_factor`].
    /// `u64::MAX` (default) disables widening.
    pub widen_watermark: u64,
    /// Multiplier applied to `WITHIN` when admission widens (> 1).
    pub widen_factor: f64,
    /// Queue depth at or above which queries are rejected with
    /// [`TrappError::Overloaded`]. `u64::MAX` (default) disables
    /// rejection.
    pub reject_watermark: u64,
    /// Fetch-pool size to [`FetchPool::resize`] to while depth sits at or
    /// above the widen watermark; the pool falls back to its build-time
    /// size once the queue drains empty. `0` (default) leaves the pool
    /// alone.
    pub burst_pool_threads: usize,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            widen_watermark: u64::MAX,
            widen_factor: 4.0,
            reject_watermark: u64::MAX,
            burst_pool_threads: 0,
        }
    }
}

/// The verdict [`AdmissionController::admit`] returns for one query.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Admission {
    /// Below every watermark: execute as asked.
    Normal,
    /// Depth crossed the widen watermark: execute with the precision
    /// constraint widened by [`AdmissionConfig::widen_factor`].
    Widened,
}

/// Live admission state shared between submitters and workers. See the
/// module docs for the ladder.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    depth: AtomicU64,
    widened: AtomicU64,
    rejected: AtomicU64,
    /// Whether the fetch pool is currently boosted above its base size.
    boosted: AtomicBool,
    /// The resizable fetch pool plus its build-time base size, when the
    /// service was built over a completion transport.
    pool: Mutex<Option<(FetchPool, usize)>>,
}

impl AdmissionController {
    /// A controller over `cfg` with an empty queue and no pool attached.
    pub fn new(cfg: AdmissionConfig) -> AdmissionController {
        AdmissionController {
            cfg,
            depth: AtomicU64::new(0),
            widened: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            boosted: AtomicBool::new(false),
            pool: Mutex::new(None),
        }
    }

    /// Attaches the service's shared fetch pool so load reactions can
    /// resize it; `base` is the build-time thread count to fall back to.
    pub fn attach_pool(&self, pool: FetchPool, base: usize) {
        *self.pool.lock() = Some((pool, base));
    }

    /// One query at the front door: sheds with
    /// [`TrappError::Overloaded`] above the reject watermark, otherwise
    /// admits (incrementing the depth gauge) and reports whether the
    /// widen watermark asks for a relaxed constraint.
    pub fn admit(&self) -> Result<Admission, TrappError> {
        let depth = self.depth.load(Ordering::SeqCst);
        if depth >= self.cfg.reject_watermark {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(TrappError::Overloaded {
                queue_depth: depth,
                limit: self.cfg.reject_watermark,
            });
        }
        self.depth.fetch_add(1, Ordering::SeqCst);
        if depth >= self.cfg.widen_watermark {
            self.widened.fetch_add(1, Ordering::Relaxed);
            self.react_to_depth(depth + 1);
            Ok(Admission::Widened)
        } else {
            Ok(Admission::Normal)
        }
    }

    /// A worker picked the query up: the queue is one shallower. Once the
    /// queue drains empty, a boosted fetch pool falls back to its base
    /// size.
    pub fn dequeued(&self) {
        let depth = self.depth.fetch_sub(1, Ordering::SeqCst).saturating_sub(1);
        self.react_to_depth(depth);
    }

    /// Applies the pool-sizing half of the ladder for an observed depth.
    fn react_to_depth(&self, depth: u64) {
        if self.cfg.burst_pool_threads == 0 {
            return;
        }
        if depth >= self.cfg.widen_watermark {
            if !self.boosted.swap(true, Ordering::SeqCst) {
                if let Some((pool, _)) = &*self.pool.lock() {
                    pool.resize(self.cfg.burst_pool_threads);
                }
            }
        } else if depth == 0 && self.boosted.swap(false, Ordering::SeqCst) {
            if let Some((pool, base)) = &*self.pool.lock() {
                pool.resize(*base);
            }
        }
    }

    /// Current queue depth (submitted, not yet picked up by a worker).
    pub fn depth(&self) -> u64 {
        self.depth.load(Ordering::SeqCst)
    }

    /// Queries admitted with a widened constraint, total.
    pub fn widened(&self) -> u64 {
        self.widened.load(Ordering::Relaxed)
    }

    /// Queries shed with [`TrappError::Overloaded`], total.
    pub fn rejected(&self) -> u64 {
        self.rejected.load(Ordering::Relaxed)
    }

    /// The constraint-widening multiplier.
    pub fn widen_factor(&self) -> f64 {
        self.cfg.widen_factor
    }

    /// The attached fetch pool's current thread target, when a pool was
    /// attached — the *actual* live size, reflecting any burst resizing.
    pub fn pool_threads(&self) -> Option<usize> {
        self.pool.lock().as_ref().map(|(pool, _)| pool.threads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_admit_everything_untouched() {
        let c = AdmissionController::new(AdmissionConfig::default());
        for _ in 0..10_000 {
            assert_eq!(c.admit().unwrap(), Admission::Normal);
        }
        assert_eq!(c.depth(), 10_000);
        assert_eq!(c.widened(), 0);
        assert_eq!(c.rejected(), 0);
    }

    #[test]
    fn ladder_widens_then_rejects_by_depth() {
        let c = AdmissionController::new(AdmissionConfig {
            widen_watermark: 2,
            reject_watermark: 4,
            ..AdmissionConfig::default()
        });
        assert_eq!(c.admit().unwrap(), Admission::Normal); // depth 0 -> 1
        assert_eq!(c.admit().unwrap(), Admission::Normal); // depth 1 -> 2
        assert_eq!(c.admit().unwrap(), Admission::Widened); // depth 2 -> 3
        assert_eq!(c.admit().unwrap(), Admission::Widened); // depth 3 -> 4
        let err = c.admit().unwrap_err(); // depth 4: shed
        assert_eq!(
            err,
            TrappError::Overloaded {
                queue_depth: 4,
                limit: 4
            }
        );
        assert_eq!(c.depth(), 4);
        assert_eq!(c.widened(), 2);
        assert_eq!(c.rejected(), 1);
        // Draining the queue re-opens the door.
        for _ in 0..4 {
            c.dequeued();
        }
        assert_eq!(c.depth(), 0);
        assert_eq!(c.admit().unwrap(), Admission::Normal);
    }

    #[test]
    fn pool_boosts_over_watermark_and_falls_back_when_drained() {
        let pool = FetchPool::new(2);
        let c = AdmissionController::new(AdmissionConfig {
            widen_watermark: 1,
            burst_pool_threads: 6,
            ..AdmissionConfig::default()
        });
        c.attach_pool(pool.clone(), 2);
        assert_eq!(c.admit().unwrap(), Admission::Normal);
        assert_eq!(pool.threads(), 2, "below watermark: untouched");
        assert_eq!(c.admit().unwrap(), Admission::Widened);
        assert_eq!(pool.threads(), 6, "over watermark: boosted");
        c.dequeued();
        assert_eq!(pool.threads(), 6, "still queued: stays boosted");
        c.dequeued();
        assert_eq!(pool.threads(), 2, "drained: back to base");
    }
}
