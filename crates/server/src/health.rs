//! Per-source health tracking: a consecutive-failure circuit breaker.
//!
//! The gateway records the final outcome of every refresh round-trip here.
//! After [`HealthConfig::failure_threshold`] consecutive failures a source's
//! breaker *opens*: the planner treats the source as **dark** and
//! CHOOSE_REFRESH excludes its tuples (planning over available tuples
//! only). Once [`HealthConfig::cooldown`] elapses the breaker moves to
//! *half-open*: the source is no longer dark, so the next plan may probe it
//! with a real refresh; that probe's outcome snaps the breaker closed
//! (success) or back open (failure).
//!
//! Darkness is advisory for *planning* only — it never fabricates data.
//! A dark source's cached bounds stay valid (TRAPP bounds are correct at
//! any staleness); what is lost is the ability to *narrow* them, which is
//! exactly what the degraded-answer machinery in `trapp-server` accounts
//! for.

use std::collections::{HashMap, HashSet};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use trapp_types::SourceId;

/// Circuit-breaker tuning knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HealthConfig {
    /// Consecutive refresh failures before a source's breaker opens.
    pub failure_threshold: u32,
    /// How long an open breaker stays dark before allowing a half-open
    /// probe.
    pub cooldown: Duration,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig {
            failure_threshold: 3,
            cooldown: Duration::from_millis(250),
        }
    }
}

/// The classic three circuit-breaker states.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: refreshes flow normally.
    Closed,
    /// Dark: recent consecutive failures; the planner avoids this source.
    Open,
    /// Probing: cooldown elapsed; the next refresh decides the state.
    HalfOpen,
}

#[derive(Clone, Copy, Debug)]
struct SourceHealth {
    consecutive_failures: u32,
    state: BreakerState,
    opened_at: Option<Instant>,
}

impl Default for SourceHealth {
    fn default() -> Self {
        SourceHealth {
            consecutive_failures: 0,
            state: BreakerState::Closed,
            opened_at: None,
        }
    }
}

/// Tracks per-source breaker state; shared (via `Arc`) between a shard's
/// gateway (which records outcomes) and the query loop (which asks for
/// the dark set before planning).
#[derive(Debug, Default)]
pub struct HealthTracker {
    cfg: HealthConfig,
    by_source: Mutex<HashMap<SourceId, SourceHealth>>,
}

impl HealthTracker {
    /// Creates a tracker with the given tuning.
    pub fn new(cfg: HealthConfig) -> Self {
        HealthTracker {
            cfg,
            by_source: Mutex::new(HashMap::new()),
        }
    }

    /// Records a successful refresh round-trip: the breaker snaps closed.
    pub fn record_success(&self, source: SourceId) {
        let mut map = self.by_source.lock().expect("health lock");
        let h = map.entry(source).or_default();
        h.consecutive_failures = 0;
        h.state = BreakerState::Closed;
        h.opened_at = None;
    }

    /// Records a failed refresh round-trip (after retries were exhausted).
    /// Opens the breaker at the threshold; a half-open probe failure
    /// re-opens immediately.
    pub fn record_failure(&self, source: SourceId) {
        let mut map = self.by_source.lock().expect("health lock");
        let h = map.entry(source).or_default();
        h.consecutive_failures = h.consecutive_failures.saturating_add(1);
        if h.state == BreakerState::HalfOpen || h.consecutive_failures >= self.cfg.failure_threshold
        {
            h.state = BreakerState::Open;
            h.opened_at = Some(Instant::now());
        }
    }

    /// The sources the planner should currently treat as dark. Open
    /// breakers whose cooldown has elapsed transition to half-open here
    /// (and are *not* reported dark), so planning itself schedules the
    /// probe.
    pub fn dark_sources(&self) -> HashSet<SourceId> {
        let mut map = self.by_source.lock().expect("health lock");
        let mut dark = HashSet::new();
        for (&source, h) in map.iter_mut() {
            if h.state == BreakerState::Open {
                let elapsed = h.opened_at.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);
                if elapsed >= self.cfg.cooldown {
                    h.state = BreakerState::HalfOpen;
                } else {
                    dark.insert(source);
                }
            }
        }
        dark
    }

    /// Current breaker state for a source (`Closed` if never seen).
    pub fn state(&self, source: SourceId) -> BreakerState {
        self.by_source
            .lock()
            .expect("health lock")
            .get(&source)
            .map(|h| h.state)
            .unwrap_or(BreakerState::Closed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(n: u64) -> SourceId {
        SourceId::new(n)
    }

    #[test]
    fn opens_after_threshold_consecutive_failures() {
        let t = HealthTracker::new(HealthConfig {
            failure_threshold: 3,
            cooldown: Duration::from_secs(60),
        });
        t.record_failure(src(1));
        t.record_failure(src(1));
        assert_eq!(t.state(src(1)), BreakerState::Closed);
        assert!(t.dark_sources().is_empty());
        t.record_failure(src(1));
        assert_eq!(t.state(src(1)), BreakerState::Open);
        assert_eq!(t.dark_sources(), HashSet::from([src(1)]));
    }

    #[test]
    fn success_resets_the_streak() {
        let t = HealthTracker::new(HealthConfig {
            failure_threshold: 2,
            cooldown: Duration::from_secs(60),
        });
        t.record_failure(src(1));
        t.record_success(src(1));
        t.record_failure(src(1));
        assert_eq!(t.state(src(1)), BreakerState::Closed);
    }

    #[test]
    fn cooldown_elapses_into_half_open_probe() {
        let t = HealthTracker::new(HealthConfig {
            failure_threshold: 1,
            cooldown: Duration::ZERO,
        });
        t.record_failure(src(1));
        assert_eq!(t.state(src(1)), BreakerState::Open);
        // Zero cooldown: the very next dark_sources() query flips to
        // half-open and reports the source available for a probe.
        assert!(t.dark_sources().is_empty());
        assert_eq!(t.state(src(1)), BreakerState::HalfOpen);
        // A failed probe re-opens immediately (no need to re-reach the
        // threshold).
        t.record_failure(src(1));
        assert_eq!(t.state(src(1)), BreakerState::Open);
        // A successful probe closes.
        assert!(t.dark_sources().is_empty()); // half-open again
        t.record_success(src(1));
        assert_eq!(t.state(src(1)), BreakerState::Closed);
    }
}
