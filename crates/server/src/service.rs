//! The query service: a concurrent multi-client front-end over one or
//! more TRAPP cache shards.
//!
//! Clients [`submit`](QueryService::submit) TRAPP/AG SQL with precision
//! constraints from any thread; a pool of worker threads drains the shared
//! job queue. The service hash-partitions the group key space over
//! [`ServiceConfig::shards`] independent [`CacheNode`]s (see
//! [`crate::ShardRouter`]) and executes each query on the
//! narrowest footprint that can answer it:
//!
//! * **single-shard** — a query whose predicate pins the partition column
//!   to one group runs entirely on that group's shard: plan under that
//!   shard's lock, fetch through that shard's gateway, install + answer
//!   under the lock again. Queries for different groups proceed in
//!   parallel with *no shared lock at all* — the scaling mechanism.
//! * **scatter-gather** — a query whose group set spans shards asks every
//!   shard for its partial aggregate input under *all* shard locks at
//!   once (a short, consistent snapshot — updates cannot interleave
//!   between shards mid-gather), merges them with
//!   [`trapp_core::merge::merge_partials`] into exactly the input one
//!   big cache would hold, plans CHOOSE_REFRESH *globally* over the merged
//!   input, splits the plan back per shard, fetches every shard's slice
//!   **concurrently** with no locks held, installs per shard, and
//!   recomputes. Deriving bounds only from the merged input keeps the
//!   sharded answer bit-equivalent to the single-cache answer.
//!
//! Within each shard the two PR-1 traffic reducers still apply: **batched
//! source round-trips** (one [`Transport::request_refresh_batch`] per
//! source per plan) and **refresh coalescing** (a per-shard single-flight
//! [`RefreshGateway`](crate::RefreshGateway); keying the in-flight table
//! per shard is free because objects never span shards).
//!
//! Execution stays phased so source round-trips run *outside* every cache
//! lock:
//!
//! 1. **plan** (shard lock): materialize bounds at the current instant,
//!    compute the cache-only answer; if the constraint is unmet, take the
//!    CHOOSE_REFRESH plan;
//! 2. **fetch** (no lock): resolve the plan's tuples to replicated objects
//!    and pull them through the owning shard's gateway — concurrent
//!    queries' round-trips overlap here, and cross-shard fetches of one
//!    query overlap with *each other*;
//! 3. **install + answer** (shard lock): install the refreshes and re-run;
//!    the CHOOSE_REFRESH guarantee makes the second pass satisfied from
//!    cache unless the clock advanced concurrently, in which case the loop
//!    repeats.
//!
//! If one shard of a scatter fails mid-fetch, the refreshes that did
//! arrive are still installed (their sources already narrowed their
//! tracked bounds — dropping them would desynchronize cache and Refresh
//! Monitor) and the query returns
//! [`TrappError::PartialResult`] instead of a bound that silently ignores
//! the missing shard.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use trapp_bounds::BoundShape;
use trapp_core::executor::{PartialQuery, PlannedQuery, QueryResult};
use trapp_core::{bounded_answer, choose_refresh, merge_partials, BoundedAnswer};
use trapp_storage::Table;
use trapp_system::{
    CacheNode, ChannelTransport, CompletionTransport, CostModel, DirectTransport, FetchPool,
    SimClock, Source, Transport,
};
use trapp_types::{
    shard_of, BoundedValue, CacheId, ObjectId, SourceId, TrappError, TupleId, Value,
};

use crate::gateway::{FetchOutcome, FetchStats, PendingFetch};
use crate::router::{Route, Shard, ShardRouter, TidMap};

/// Safety valve for the scatter-gather loop: each extra round means a
/// concurrent clock advance re-widened bounds mid-query.
const MAX_SCATTER_ROUNDS: usize = 8;

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the query queue.
    pub workers: usize,
    /// Number of cache shards the group key space is hash-partitioned
    /// over. `1` reproduces the single-cache service exactly.
    pub shards: usize,
    /// Share refreshes across queries via each shard gateway's in-flight
    /// table.
    pub coalesce: bool,
    /// Serve refresh plans with one round-trip per source (`false` falls
    /// back to the per-object seed path — the measurable baseline).
    pub batch_refreshes: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            shards: 1,
            coalesce: true,
            batch_refreshes: true,
        }
    }
}

/// One query's answer plus its per-query service accounting.
#[derive(Clone, Debug)]
pub struct ServiceReply {
    /// The executor's result (bounded answer, refresh plan, cost). For
    /// scatter-gathered queries, `refreshed` is reported in the global
    /// tuple-id space.
    pub result: QueryResult,
    /// Refreshes this query obtained from a shared in-flight table
    /// instead of a source — work another query already paid for.
    pub refreshes_saved: u64,
    /// Transport round-trips this query actually issued (all shards).
    pub round_trips: u64,
    /// Time spent executing (excludes queue wait).
    pub exec_time: Duration,
}

/// Aggregate service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries answered successfully.
    pub queries: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Queries answered by cross-shard scatter-gather.
    pub scatter_queries: u64,
    /// Refreshes served from in-flight tables across all queries/shards.
    pub refreshes_coalesced: u64,
    /// Refreshes forwarded to sources.
    pub refreshes_forwarded: u64,
    /// Transport round-trips issued.
    pub round_trips: u64,
}

struct Job {
    sql: String,
    reply: Sender<Result<ServiceReply, TrappError>>,
}

struct ServiceCore {
    router: ShardRouter,
    clock: SimClock,
    batch_refreshes: bool,
    counters: Mutex<ServiceStats>,
}

impl ServiceCore {
    fn run_query(&self, sql: &str) -> Result<ServiceReply, TrappError> {
        let started = Instant::now();
        let outcome = self.run_query_inner(sql);
        let exec_time = started.elapsed();

        let mut counters = self.counters.lock();
        match outcome {
            Ok((result, stats, scattered)) => {
                counters.queries += 1;
                counters.round_trips += stats.round_trips;
                counters.scatter_queries += u64::from(scattered);
                Ok(ServiceReply {
                    result,
                    refreshes_saved: stats.coalesced,
                    round_trips: stats.round_trips,
                    exec_time,
                })
            }
            Err(e) => {
                counters.errors += 1;
                Err(e)
            }
        }
    }

    fn run_query_inner(&self, sql: &str) -> Result<(QueryResult, FetchStats, bool), TrappError> {
        let query = trapp_sql::parse_query(sql)?;
        match self.router.route(&query) {
            Route::Single(s) => self
                .run_on_shard(&query, s)
                .map(|(result, stats)| (result, stats, false)),
            Route::Scatter => self
                .run_scatter(&query)
                .map(|(result, stats)| (result, stats, true)),
        }
    }

    /// The single-shard phased execution: plan → fetch → install + answer,
    /// all against one shard's cache and gateway.
    fn run_on_shard(
        &self,
        query: &trapp_sql::Query,
        idx: usize,
    ) -> Result<(QueryResult, FetchStats), TrappError> {
        let shard = self.router.shard(idx);
        // Phase 1 — plan under the shard lock, against bounds materialized
        // at this instant.
        let now;
        let planned = {
            let mut cache = shard.cache.lock();
            cache.materialize()?;
            now = self.clock.now();
            cache.session().plan_query(query)?
        };
        match planned {
            PlannedQuery::Satisfied(result) => Ok((result, FetchStats::default())),
            PlannedQuery::Unsupported => {
                // Joins / grouped / iterative: the classic locked loop.
                // (Refresh traffic still flows through the shard gateway,
                // so coalescing and the global counters stay coherent;
                // only the per-query round-trip attribution is
                // unavailable.)
                let mut cache = shard.cache.lock();
                let mut result = cache.execute(query, &shard.gateway)?;
                for (table, tid) in &mut result.refreshed {
                    *tid = shard.global_tid(table, *tid);
                }
                Ok((result, FetchStats::default()))
            }
            PlannedQuery::NeedsRefresh {
                table,
                tuples,
                refresh_cost,
                initial,
            } => {
                // Resolve tuples to (source, objects) with a short lock.
                let plan: Vec<(SourceId, Vec<ObjectId>)> = {
                    let cache = shard.cache.lock();
                    let mut per_source: BTreeMap<SourceId, Vec<ObjectId>> = BTreeMap::new();
                    for &tid in &tuples {
                        for (object, source) in cache.objects_backing(&table, tid)? {
                            per_source.entry(source).or_default().push(object);
                        }
                    }
                    per_source.into_iter().collect()
                };

                // Phase 2 — fetch with the cache lock RELEASED: concurrent
                // queries overlap their round-trips here and the gateway
                // coalesces shared objects.
                let outcome = shard
                    .gateway
                    .fetch(shard.cache_id, now, &plan, self.batch_refreshes);

                // Phase 3 — install and answer under the lock. Refreshes
                // obtained before a partial failure are installed too —
                // their sources already narrowed their tracked bounds, and
                // dropping them would desynchronize cache and monitor.
                let mut cache = shard.cache.lock();
                for refresh in outcome.refreshes {
                    cache.install_refresh(refresh)?;
                }
                if let Some(e) = outcome.error {
                    return Err(e);
                }
                let mut result = cache.execute(query, &shard.gateway)?;
                // The second pass saw pinned cells; report the true
                // pre-refresh initial answer from planning time.
                result.initial_answer = initial;
                if result.refreshed.is_empty() {
                    // The normal case: the second pass was satisfied from
                    // the pinned cells. Attribute the work this query
                    // actually planned and paid for.
                    result.refreshed = tuples.iter().map(|&tid| (table.clone(), tid)).collect();
                    result.refresh_cost = refresh_cost;
                    result.rounds = 1;
                }
                for (table, tid) in &mut result.refreshed {
                    *tid = shard.global_tid(table, *tid);
                }
                Ok((result, outcome.stats))
            }
        }
    }

    /// Cross-shard scatter-gather: partial inputs from every shard, a
    /// global plan over the merged input, concurrent per-shard fetches,
    /// per-shard installs, merged recompute. See the module docs.
    fn run_scatter(
        &self,
        query: &trapp_sql::Query,
    ) -> Result<(QueryResult, FetchStats), TrappError> {
        let mut stats = FetchStats::default();
        let mut refreshed: Vec<(String, TupleId)> = Vec::new();
        let mut cost = 0.0;
        let mut rounds = 0usize;
        let mut initial: Option<BoundedAnswer> = None;

        loop {
            // Gather phase: take *every* shard's lock (in index order —
            // this is the only multi-lock acquisition in the service, so
            // ordered acquisition cannot deadlock) and only then build the
            // partial inputs. Holding all locks makes the merged input a
            // consistent snapshot: an update cannot land on shard 1 after
            // shard 0 was already gathered, which would merge bounds from
            // two different logical states into an answer that was valid
            // at no instant.
            let mut inputs = Vec::with_capacity(self.router.shard_count());
            let mut shape: Option<(String, trapp_core::Aggregate, Option<f64>)> = None;
            let mut strategy = trapp_core::SolverStrategy::default();
            let now;
            {
                let mut guards: Vec<_> = self
                    .router
                    .shards()
                    .iter()
                    .map(|s| s.cache.lock())
                    .collect();
                for (shard, cache) in self.router.shards().iter().zip(guards.iter_mut()) {
                    cache.materialize()?;
                    strategy = cache.session().config.strategy;
                    match cache.session().partial_query(query)? {
                        PartialQuery::Partial(mut p) => {
                            let table = p.table.clone();
                            p.rewrite_tids(|tid| shard.global_tid(&table, tid));
                            shape.get_or_insert((p.table, p.agg, p.within));
                            inputs.push(p.input);
                        }
                        PartialQuery::Unsupported => {
                            return Err(TrappError::Unsupported(
                                "joins, GROUP BY, and iterative execution cannot be \
                                 scatter-gathered across shards; run them on a \
                                 single-shard service (shards = 1)"
                                    .into(),
                            ))
                        }
                    }
                }
                now = self.clock.now();
            }
            let (table, agg, within) = shape.expect("at least one shard");
            let merged = merge_partials(inputs)?;
            let answer = bounded_answer(agg, &merged)?;
            let initial_answer = *initial.get_or_insert(answer);

            if answer.satisfies(within) {
                return Ok((
                    QueryResult {
                        answer,
                        initial_answer,
                        refreshed,
                        refresh_cost: cost,
                        rounds,
                        satisfied: true,
                    },
                    stats,
                ));
            }
            if rounds >= MAX_SCATTER_ROUNDS {
                return Err(TrappError::Internal(format!(
                    "scatter-gather did not converge in {rounds} rounds \
                     (bounds kept re-widening under the refresh plan)"
                )));
            }

            // Plan phase: CHOOSE_REFRESH over the merged input — exactly
            // the plan a single cache holding every row would pick.
            let r = within.expect("unsatisfied implies finite R");
            let plan = choose_refresh(agg, &merged, r, strategy)?;
            if plan.tuples.is_empty() {
                // No refresh can help further (e.g. MEDIAN's slack).
                return Ok((
                    QueryResult {
                        answer,
                        initial_answer,
                        refreshed,
                        refresh_cost: cost,
                        rounds,
                        satisfied: false,
                    },
                    stats,
                ));
            }
            rounds += 1;
            cost += plan.planned_cost;

            // Split the global plan by owning shard and resolve each
            // shard's tuples to (source, objects) under a short lock.
            let shard_count = self.router.shard_count();
            let mut local_tuples: Vec<Vec<TupleId>> = vec![Vec::new(); shard_count];
            for &gtid in &plan.tuples {
                let (s, local) = self.router.locate(&table, gtid)?;
                local_tuples[s].push(local);
                // A later round (concurrent clock advance) may re-plan a
                // tuple already refreshed; report each tuple once, like
                // the single-shard attribution does.
                if !refreshed.iter().any(|(t, id)| *id == gtid && t == &table) {
                    refreshed.push((table.clone(), gtid));
                }
            }
            let mut fetch_plans: Vec<Vec<(SourceId, Vec<ObjectId>)>> =
                vec![Vec::new(); shard_count];
            for (s, tuples) in local_tuples.iter().enumerate() {
                if tuples.is_empty() {
                    continue;
                }
                let cache = self.router.shard(s).cache.lock();
                let mut per_source: BTreeMap<SourceId, Vec<ObjectId>> = BTreeMap::new();
                for &tid in tuples {
                    for (object, source) in cache.objects_backing(&table, tid)? {
                        per_source.entry(source).or_default().push(object);
                    }
                }
                fetch_plans[s] = per_source.into_iter().collect();
            }

            // Fetch phase: submit every shard's slice through its gateway
            // *before* waiting on any of them — the cross-shard
            // round-trips ride the transport's completion queues and
            // overlap each other *and* other queries' fetches on the same
            // shards, with no per-round thread spawns. (Wall-clock is the
            // slowest shard's slice, exactly as with the old scoped
            // threads, but the fan-out now costs zero OS threads.)
            let pending: Vec<(usize, PendingFetch)> = fetch_plans
                .iter()
                .enumerate()
                .filter(|(_, plan)| !plan.is_empty())
                .map(|(s, plan)| {
                    let shard = self.router.shard(s);
                    (
                        s,
                        shard
                            .gateway
                            .begin_fetch(shard.cache_id, now, plan, self.batch_refreshes),
                    )
                })
                .collect();
            let outcomes: Vec<(usize, FetchOutcome)> = pending
                .into_iter()
                .map(|(s, p)| (s, self.router.shard(s).gateway.finish_fetch(p)))
                .collect();

            // Install phase: everything that arrived goes in — even on a
            // failed shard, its sources already narrowed their tracked
            // bounds — then a failure surfaces as a partial-result error
            // rather than a bound that pretends the lost shard is exact.
            let mut failure: Option<(usize, TrappError)> = None;
            for (s, outcome) in outcomes {
                let mut cache = self.router.shard(s).cache.lock();
                for refresh in outcome.refreshes {
                    cache.install_refresh(refresh)?;
                }
                stats.round_trips += outcome.stats.round_trips;
                stats.coalesced += outcome.stats.coalesced;
                stats.forwarded += outcome.stats.forwarded;
                if let Some(e) = outcome.error {
                    failure.get_or_insert((s, e));
                }
            }
            if let Some((s, e)) = failure {
                return Err(TrappError::PartialResult(format!(
                    "shard {s} failed while refreshing its slice of the plan: {e}"
                )));
            }
            // Loop: recompute the merged answer. The CHOOSE_REFRESH
            // guarantee makes it satisfied unless the clock advanced.
        }
    }
}

/// A pending answer; see [`QueryService::submit`].
pub struct QueryTicket {
    rx: Receiver<Result<ServiceReply, TrappError>>,
}

impl QueryTicket {
    /// Blocks until the answer is ready.
    pub fn wait(self) -> Result<ServiceReply, TrappError> {
        self.rx
            .recv()
            .map_err(|_| TrappError::Internal("query service shut down mid-query".into()))?
    }
}

/// A running query service. See the module docs.
pub struct QueryService {
    core: Arc<ServiceCore>,
    jobs: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Starts a single-shard service over an already-wired cache +
    /// transport. Most callers want [`ServiceBuilder`] (which also builds
    /// sharded services).
    pub fn start(
        cache: CacheNode,
        transport: impl Transport + 'static,
        clock: SimClock,
        config: ServiceConfig,
    ) -> QueryService {
        let mut cache = cache;
        cache.set_batch_refreshes(config.batch_refreshes);
        let shard = Shard::new(
            cache,
            Box::new(transport) as Box<dyn Transport>,
            config.coalesce,
            HashMap::new(),
        );
        let router = ShardRouter::new(vec![shard], None, HashSet::new(), HashMap::new());
        QueryService::start_router(router, clock, config)
    }

    /// Starts workers over an assembled router.
    fn start_router(router: ShardRouter, clock: SimClock, config: ServiceConfig) -> QueryService {
        let core = Arc::new(ServiceCore {
            router,
            clock,
            batch_refreshes: config.batch_refreshes,
            counters: Mutex::new(ServiceStats::default()),
        });
        let (jobs_tx, jobs_rx) = unbounded::<Job>();
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let core = core.clone();
                let rx = jobs_rx.clone();
                std::thread::Builder::new()
                    .name(format!("trapp-query-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let _ = job.reply.send(core.run_query(&job.sql));
                        }
                    })
                    .expect("spawn query worker")
            })
            .collect();
        QueryService {
            core,
            jobs: Some(jobs_tx),
            workers,
        }
    }

    /// Enqueues a query; the returned ticket resolves to the answer.
    pub fn submit(&self, sql: impl Into<String>) -> QueryTicket {
        let (reply, rx) = unbounded();
        let job = Job {
            sql: sql.into(),
            reply,
        };
        if let Some(jobs) = &self.jobs {
            // A send only fails after shutdown; the ticket then reports it.
            let _ = jobs.send(job);
        }
        QueryTicket { rx }
    }

    /// Convenience: submit and wait.
    pub fn query(&self, sql: impl Into<String>) -> Result<ServiceReply, TrappError> {
        self.submit(sql).wait()
    }

    /// Applies an update to a replicated object's master value, delivering
    /// any value-initiated refreshes to the owning shard's cache. Returns
    /// how many were delivered.
    pub fn apply_update(&self, object: ObjectId, value: f64) -> Result<usize, TrappError> {
        let idx = self
            .core
            .router
            .object_shard(object)
            .ok_or_else(|| TrappError::RefreshFailed(format!("{object} is not replicated")))?;
        let shard = self.core.router.shard(idx);
        let mut cache = shard.cache.lock();
        let source = cache
            .route(object)
            .map(|r| r.source)
            .ok_or_else(|| TrappError::RefreshFailed(format!("{object} is not replicated")))?;
        let refreshes = shard
            .gateway
            .apply_update(source, object, value, self.core.clock.now())?;
        let n = refreshes.len();
        for (cache_id, refresh) in refreshes {
            debug_assert_eq!(cache_id, cache.id());
            cache.install_refresh(refresh)?;
        }
        Ok(n)
    }

    /// Advances the shared clock (bounds widen as time passes).
    pub fn advance_clock(&self, dt: f64) {
        self.core.clock.advance(dt);
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.core.clock
    }

    /// Number of cache shards.
    pub fn shard_count(&self) -> usize {
        self.core.router.shard_count()
    }

    /// Runs `f` against shard 0's cache (setup, inspection); serialized
    /// with query execution on that shard. Sharded services usually want
    /// [`QueryService::with_shard_cache`].
    pub fn with_cache<R>(&self, f: impl FnOnce(&mut CacheNode) -> R) -> R {
        self.with_shard_cache(0, f)
    }

    /// Runs `f` against one shard's cache; serialized with query execution
    /// on that shard.
    pub fn with_shard_cache<R>(&self, shard: usize, f: impl FnOnce(&mut CacheNode) -> R) -> R {
        f(&mut self.core.router.shard(shard).cache.lock())
    }

    /// A consistent snapshot of the aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        let mut s = *self.core.counters.lock();
        for shard in self.core.router.shards() {
            s.refreshes_coalesced += shard.gateway.refreshes_coalesced();
            s.refreshes_forwarded += shard.gateway.refreshes_forwarded();
        }
        s
    }

    /// Stops accepting work and joins every worker.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.jobs = None; // closes the queue; workers drain and exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Everything `wire` produces for one shard, before the transport choice.
struct WiredShard {
    cache: CacheNode,
    sources: Vec<Source>,
    to_global: TidMap<TupleId>,
}

/// Declarative service setup: tables, then rows bound to sources, then
/// [`build_direct`](ServiceBuilder::build_direct) or
/// [`build_channel`](ServiceBuilder::build_channel).
///
/// With `config.shards = 1` (the default) this mirrors
/// [`trapp_system::Simulation`]'s wiring exactly (same object-id
/// assignment order, same subscription flow, same cost model), so a
/// service and a simulation built from the same specs hold identical
/// initial state — the property the correctness tests lean on.
///
/// With more shards, rows are placed by hashing the
/// [`partition_by`](ServiceBuilder::partition_by) column's exact integer
/// value ([`trapp_types::shard_of`]); rows without such a cell spread by
/// global tuple id. Global tuple ids and object ids are assigned in the
/// same order as the single-shard build, so the *union* of the shards is
/// cell-for-cell the single-shard service — which is what makes sharded
/// answers comparable (indeed bit-equal) across shard counts.
pub struct ServiceBuilder {
    shape: BoundShape,
    initial_width: f64,
    cost_model: CostModel,
    config: ServiceConfig,
    partition_by: Option<String>,
    tables: Vec<Table>,
    rows: Vec<(String, SourceId, Vec<BoundedValue>)>,
}

impl Default for ServiceBuilder {
    fn default() -> ServiceBuilder {
        ServiceBuilder {
            shape: BoundShape::Sqrt,
            initial_width: 1.0,
            cost_model: CostModel::unit(),
            config: ServiceConfig::default(),
            partition_by: None,
            tables: Vec::new(),
            rows: Vec::new(),
        }
    }
}

impl ServiceBuilder {
    /// Starts a builder with √t bounds, width 1, unit costs.
    pub fn new() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// Sets the bound shape issued by all sources.
    pub fn shape(mut self, shape: BoundShape) -> Self {
        self.shape = shape;
        self
    }

    /// Sets the initial adaptive width parameter.
    pub fn initial_width(mut self, w: f64) -> Self {
        self.initial_width = w;
        self
    }

    /// Sets the refresh cost model.
    pub fn cost_model(mut self, m: CostModel) -> Self {
        self.cost_model = m;
        self
    }

    /// Sets the service configuration.
    pub fn config(mut self, config: ServiceConfig) -> Self {
        self.config = config;
        self
    }

    /// Names the partition column: rows are placed on shards by the hash
    /// of this column's exact integer value, and queries pinning it to one
    /// group route to a single shard. Without it, a multi-shard service
    /// spreads rows by tuple id and answers every query by scatter-gather.
    pub fn partition_by(mut self, column: impl Into<String>) -> Self {
        self.partition_by = Some(column.into());
        self
    }

    /// Adds a cached table (rows via [`ServiceBuilder::row`]).
    pub fn table(mut self, table: Table) -> Self {
        self.tables.push(table);
        self
    }

    /// Adds a row whose bounded cells hold initial master values owned by
    /// `source` (exact values for exact columns, exact floats as initial
    /// master values for bounded columns).
    pub fn row(
        mut self,
        table: impl Into<String>,
        source: SourceId,
        cells: Vec<BoundedValue>,
    ) -> Self {
        self.rows.push((table.into(), source, cells));
        self
    }

    /// Builds over the synchronous [`DirectTransport`] (one per shard).
    pub fn build_direct(self) -> Result<QueryService, TrappError> {
        self.build_with(|sources| {
            let mut transport = DirectTransport::new();
            for source in sources {
                transport.add_source(source);
            }
            Box::new(transport) as Box<dyn Transport>
        })
    }

    /// Builds over the threaded [`ChannelTransport`] with the given
    /// simulated one-way latency per round-trip (one transport — and one
    /// set of source actor threads — per shard).
    pub fn build_channel(self, latency: Duration) -> Result<QueryService, TrappError> {
        self.build_with(move |sources| {
            let mut transport = ChannelTransport::new(latency);
            for source in sources {
                transport.add_source(source);
            }
            Box::new(transport) as Box<dyn Transport>
        })
    }

    /// Builds over the completion-based [`CompletionTransport`]: one
    /// **service-wide** [`FetchPool`] of `pool_threads` demux threads
    /// multiplexes every shard's sources, so total transport threads are
    /// `O(pool_threads)` — independent of the source × shard count —
    /// where [`build_channel`](ServiceBuilder::build_channel) burns one OS
    /// thread per source per shard. `latency` is the simulated one-way
    /// wire time per refresh round-trip (held on a timer, not a sleeping
    /// thread).
    pub fn build_completion(
        self,
        latency: Duration,
        pool_threads: usize,
    ) -> Result<QueryService, TrappError> {
        let pool = FetchPool::new(pool_threads);
        self.build_with(move |sources| {
            let mut transport = CompletionTransport::new(latency, pool.clone());
            for source in sources {
                transport.add_source(source);
            }
            Box::new(transport) as Box<dyn Transport>
        })
    }

    /// Shared build: wire the shards, wrap each one's sources in a
    /// transport, assemble the router, start the workers.
    fn build_with(
        self,
        mut make_transport: impl FnMut(Vec<Source>) -> Box<dyn Transport>,
    ) -> Result<QueryService, TrappError> {
        let config = self.config;
        let partition_column = self.partition_by.clone();
        let (clock, wired, group_placed, from_global) = self.wire()?;
        let shards = wired
            .into_iter()
            .map(|w| {
                let mut cache = w.cache;
                cache.set_batch_refreshes(config.batch_refreshes);
                Shard::new(
                    cache,
                    make_transport(w.sources),
                    config.coalesce,
                    w.to_global,
                )
            })
            .collect();
        let router = ShardRouter::new(shards, partition_column, group_placed, from_global);
        Ok(QueryService::start_router(router, clock, config))
    }

    /// The shard a row lands on: hash of the partition cell's exact
    /// integer value when available, hash of the global tuple id
    /// otherwise. Returns the shard plus whether the row was group-placed.
    fn place(
        partition_by: Option<&str>,
        table: &Table,
        cells: &[BoundedValue],
        global_tid: TupleId,
        shards: usize,
    ) -> (usize, bool) {
        if let Some(col) = partition_by {
            if let Ok(idx) = table.schema().column_index(col) {
                if let Some(BoundedValue::Exact(Value::Int(g))) = cells.get(idx) {
                    return (shard_of(*g as u64, shards), true);
                }
            }
        }
        (shard_of(global_tid.raw(), shards), false)
    }

    /// Shared wiring: registers objects, subscribes each shard's cache,
    /// prices tuples — transport-agnostic because subscription happens
    /// before the sources move behind a transport.
    #[allow(clippy::type_complexity)]
    fn wire(
        self,
    ) -> Result<
        (
            SimClock,
            Vec<WiredShard>,
            HashSet<String>,
            TidMap<(usize, TupleId)>,
        ),
        TrappError,
    > {
        self.cost_model.validate()?;
        let shards = self.config.shards.max(1);
        let clock = SimClock::new();
        let now = clock.now();

        let mut wired: Vec<WiredShard> = (0..shards)
            .map(|i| {
                Ok(WiredShard {
                    cache: {
                        let mut cache = CacheNode::new(CacheId::new(i as u64 + 1), clock.clone());
                        for table in &self.tables {
                            cache.add_table(table.clone())?;
                        }
                        cache
                    },
                    sources: Vec::new(),
                    to_global: HashMap::new(),
                })
            })
            .collect::<Result<_, TrappError>>()?;

        // Tables start fully group-placed; any row that falls back to
        // tuple-id placement revokes single-shard routing for its table.
        let mut group_placed: HashSet<String> =
            self.tables.iter().map(|t| t.name().to_owned()).collect();
        let mut from_global: TidMap<(usize, TupleId)> = HashMap::new();

        // Global id assignment matches the single-shard build exactly:
        // tuple ids count up per table in row order, object ids count up
        // across all rows in row order.
        let mut next_global: HashMap<String, u64> = HashMap::new();
        let mut next_object = 1u64;

        for (table_name, source_id, cells) in self.rows {
            let counter = next_global.entry(table_name.clone()).or_insert(1);
            let global_tid = TupleId::new(*counter);
            *counter += 1;

            let template = self
                .tables
                .iter()
                .find(|t| t.name() == table_name)
                .ok_or_else(|| TrappError::UnknownTable(table_name.clone()))?;
            let (shard_idx, by_group) = Self::place(
                self.partition_by.as_deref(),
                template,
                &cells,
                global_tid,
                shards,
            );
            if !by_group {
                group_placed.remove(&table_name);
            }
            let shard = &mut wired[shard_idx];

            if !shard.sources.iter().any(|s| s.id() == source_id) {
                shard.sources.push(Source::new(source_id, self.shape));
            }
            let source = shard
                .sources
                .iter_mut()
                .find(|s| s.id() == source_id)
                .expect("just ensured");

            let bounded_cols = shard
                .cache
                .session()
                .catalog()
                .table(&table_name)?
                .schema()
                .bounded_columns();
            let tid: TupleId = shard
                .cache
                .session_mut()
                .catalog_mut()
                .table_mut(&table_name)?
                .insert(cells.clone())?;
            shard
                .to_global
                .entry(table_name.clone())
                .or_default()
                .insert(tid, global_tid);
            from_global
                .entry(table_name.clone())
                .or_default()
                .insert(global_tid, (shard_idx, tid));

            let mut tuple_cost = 0.0;
            for &col in &bounded_cols {
                let initial = cells
                    .get(col)
                    .ok_or_else(|| TrappError::SchemaViolation("row arity".into()))?
                    .as_interval()?
                    .midpoint();
                let object = ObjectId::new(next_object);
                next_object += 1;
                source.register_object(object, initial)?;
                shard
                    .cache
                    .bind_object(object, source_id, table_name.as_str(), tid, col)?;
                let refresh =
                    source.subscribe(shard.cache.id(), object, self.initial_width, now)?;
                shard.cache.install_refresh(refresh)?;
                tuple_cost += self.cost_model.cost(source_id, object);
            }
            shard
                .cache
                .session_mut()
                .catalog_mut()
                .table_mut(&table_name)?
                .set_cost(tid, tuple_cost.max(f64::MIN_POSITIVE))?;
        }
        Ok((clock, wired, group_placed, from_global))
    }
}
