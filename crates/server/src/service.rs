//! The query service: a concurrent multi-client front-end over one TRAPP
//! cache.
//!
//! Clients [`submit`](QueryService::submit) TRAPP/AG SQL with precision
//! constraints from any thread; a pool of worker threads drains the shared
//! job queue and executes each query against the [`CacheNode`]. Two
//! mechanisms cut the refresh traffic that dominates tight-precision
//! workloads:
//!
//! * **batched source round-trips** — the cache's oracle serves each
//!   CHOOSE_REFRESH plan with one [`Transport::request_refresh_batch`] per
//!   source instead of one round-trip per object;
//! * **refresh coalescing** — all workers share one
//!   [`RefreshGateway`](crate::RefreshGateway), so queries overlapping on
//!   an object at the same logical instant share a single refresh.
//!
//! Execution is phased so that the expensive part — source round-trips —
//! runs *outside* the cache lock:
//!
//! 1. **plan** (cache lock): materialize bounds at the current instant,
//!    compute the cache-only answer; if the constraint is unmet, take the
//!    CHOOSE_REFRESH plan ([`trapp_core::executor::PlannedQuery`]);
//! 2. **fetch** (no lock): resolve the plan's tuples to replicated objects
//!    and pull them through the shared gateway — concurrent queries'
//!    round-trips overlap here, and the gateway's single-flight table
//!    de-duplicates overlapping objects;
//! 3. **install + answer** (cache lock): install the refreshes and re-run
//!    the query; the CHOOSE_REFRESH guarantee makes the second pass
//!    satisfied from cache, and if a concurrent clock advance re-widened
//!    anything, the classic locked path patches the gap.
//!
//! Every answer is therefore computed against a consistent snapshot and
//! meets its precision constraint under any interleaving; what batching
//! and coalescing change is the *traffic*, which `trapp-bench`'s
//! `service_throughput` binary measures rather than asserts.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use trapp_bounds::BoundShape;
use trapp_core::executor::QueryResult;
use trapp_storage::Table;
use trapp_system::{
    CacheNode, ChannelTransport, CostModel, DirectTransport, SimClock, Source, Transport,
};
use trapp_types::{BoundedValue, CacheId, ObjectId, SourceId, TrappError, TupleId};

use crate::gateway::RefreshGateway;

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the query queue.
    pub workers: usize,
    /// Share refreshes across queries via the gateway's in-flight table.
    pub coalesce: bool,
    /// Serve refresh plans with one round-trip per source (`false` falls
    /// back to the per-object seed path — the measurable baseline).
    pub batch_refreshes: bool,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            coalesce: true,
            batch_refreshes: true,
        }
    }
}

/// One query's answer plus its per-query service accounting.
#[derive(Clone, Debug)]
pub struct ServiceReply {
    /// The executor's result (bounded answer, refresh plan, cost).
    pub result: QueryResult,
    /// Refreshes this query obtained from the shared in-flight table
    /// instead of a source — work another query already paid for.
    pub refreshes_saved: u64,
    /// Transport round-trips this query actually issued.
    pub round_trips: u64,
    /// Time spent executing at the cache (excludes queue wait).
    pub exec_time: Duration,
}

/// Aggregate service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries answered successfully.
    pub queries: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Refreshes served from the in-flight table across all queries.
    pub refreshes_coalesced: u64,
    /// Refreshes forwarded to sources.
    pub refreshes_forwarded: u64,
    /// Transport round-trips issued.
    pub round_trips: u64,
}

struct Job {
    sql: String,
    reply: Sender<Result<ServiceReply, TrappError>>,
}

struct ServiceCore {
    cache: Mutex<CacheNode>,
    cache_id: CacheId,
    gateway: RefreshGateway<Box<dyn Transport>>,
    clock: SimClock,
    batch_refreshes: bool,
    counters: Mutex<ServiceStats>,
}

impl ServiceCore {
    fn run_query(&self, sql: &str) -> Result<ServiceReply, TrappError> {
        let started = Instant::now();
        let outcome = self.run_query_inner(sql);
        let exec_time = started.elapsed();

        let mut counters = self.counters.lock();
        match outcome {
            Ok((result, stats)) => {
                counters.queries += 1;
                counters.round_trips += stats.round_trips;
                Ok(ServiceReply {
                    result,
                    refreshes_saved: stats.coalesced,
                    round_trips: stats.round_trips,
                    exec_time,
                })
            }
            Err(e) => {
                counters.errors += 1;
                Err(e)
            }
        }
    }

    fn run_query_inner(
        &self,
        sql: &str,
    ) -> Result<(QueryResult, crate::gateway::FetchStats), TrappError> {
        use trapp_core::executor::PlannedQuery;

        let query = trapp_sql::parse_query(sql)?;
        // Phase 1 — plan under the cache lock, against bounds materialized
        // at this instant.
        let now;
        let planned = {
            let mut cache = self.cache.lock();
            cache.materialize()?;
            now = self.clock.now();
            cache.session().plan_query(&query)?
        };
        match planned {
            PlannedQuery::Satisfied(result) => Ok((result, crate::gateway::FetchStats::default())),
            PlannedQuery::Unsupported => {
                // Joins / grouped / iterative: the classic locked loop.
                // (Refresh traffic still flows through the gateway, so
                // coalescing and the global counters stay coherent; only
                // the per-query round-trip attribution is unavailable.)
                let mut cache = self.cache.lock();
                let result = cache.execute(&query, &self.gateway)?;
                Ok((result, crate::gateway::FetchStats::default()))
            }
            PlannedQuery::NeedsRefresh {
                table,
                tuples,
                refresh_cost,
            } => {
                // Resolve tuples to (source, objects) with a short lock.
                let plan: Vec<(SourceId, Vec<ObjectId>)> = {
                    let cache = self.cache.lock();
                    let mut per_source: std::collections::BTreeMap<SourceId, Vec<ObjectId>> =
                        std::collections::BTreeMap::new();
                    for &tid in &tuples {
                        for (object, source) in cache.objects_backing(&table, tid)? {
                            per_source.entry(source).or_default().push(object);
                        }
                    }
                    per_source.into_iter().collect()
                };

                // Phase 2 — fetch with the cache lock RELEASED: concurrent
                // queries overlap their round-trips here and the gateway
                // coalesces shared objects.
                let outcome = self
                    .gateway
                    .fetch(self.cache_id, now, &plan, self.batch_refreshes);

                // Phase 3 — install and answer under the lock. Refreshes
                // obtained before a partial failure are installed too —
                // their sources already narrowed their tracked bounds, and
                // dropping them would desynchronize cache and monitor.
                let mut cache = self.cache.lock();
                for refresh in outcome.refreshes {
                    cache.install_refresh(refresh)?;
                }
                if let Some(e) = outcome.error {
                    return Err(e);
                }
                let mut result = cache.execute(&query, &self.gateway)?;
                if result.refreshed.is_empty() {
                    // The normal case: the second pass was satisfied from
                    // the pinned cells. Attribute the work this query
                    // actually planned and paid for.
                    result.refreshed = tuples.iter().map(|&tid| (table.clone(), tid)).collect();
                    result.refresh_cost = refresh_cost;
                    result.rounds = 1;
                }
                Ok((result, outcome.stats))
            }
        }
    }
}

/// A pending answer; see [`QueryService::submit`].
pub struct QueryTicket {
    rx: Receiver<Result<ServiceReply, TrappError>>,
}

impl QueryTicket {
    /// Blocks until the answer is ready.
    pub fn wait(self) -> Result<ServiceReply, TrappError> {
        self.rx
            .recv()
            .map_err(|_| TrappError::Internal("query service shut down mid-query".into()))?
    }
}

/// A running query service. See the module docs.
pub struct QueryService {
    core: Arc<ServiceCore>,
    jobs: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl QueryService {
    /// Starts a service over an already-wired cache + transport. Most
    /// callers want [`ServiceBuilder`] instead.
    pub fn start(
        cache: CacheNode,
        transport: impl Transport + 'static,
        clock: SimClock,
        mut config: ServiceConfig,
    ) -> QueryService {
        let mut cache = cache;
        cache.set_batch_refreshes(config.batch_refreshes);
        config.workers = config.workers.max(1);
        let core = Arc::new(ServiceCore {
            cache_id: cache.id(),
            cache: Mutex::new(cache),
            gateway: RefreshGateway::new(
                Box::new(transport) as Box<dyn Transport>,
                config.coalesce,
            ),
            clock,
            batch_refreshes: config.batch_refreshes,
            counters: Mutex::new(ServiceStats::default()),
        });
        let (jobs_tx, jobs_rx) = unbounded::<Job>();
        let workers = (0..config.workers)
            .map(|i| {
                let core = core.clone();
                let rx = jobs_rx.clone();
                std::thread::Builder::new()
                    .name(format!("trapp-query-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            let _ = job.reply.send(core.run_query(&job.sql));
                        }
                    })
                    .expect("spawn query worker")
            })
            .collect();
        QueryService {
            core,
            jobs: Some(jobs_tx),
            workers,
        }
    }

    /// Enqueues a query; the returned ticket resolves to the answer.
    pub fn submit(&self, sql: impl Into<String>) -> QueryTicket {
        let (reply, rx) = unbounded();
        let job = Job {
            sql: sql.into(),
            reply,
        };
        if let Some(jobs) = &self.jobs {
            // A send only fails after shutdown; the ticket then reports it.
            let _ = jobs.send(job);
        }
        QueryTicket { rx }
    }

    /// Convenience: submit and wait.
    pub fn query(&self, sql: impl Into<String>) -> Result<ServiceReply, TrappError> {
        self.submit(sql).wait()
    }

    /// Applies an update to a replicated object's master value, delivering
    /// any value-initiated refreshes to the cache. Returns how many were
    /// delivered.
    pub fn apply_update(&self, object: ObjectId, value: f64) -> Result<usize, TrappError> {
        let mut cache = self.core.cache.lock();
        let source = cache
            .route(object)
            .map(|r| r.source)
            .ok_or_else(|| TrappError::RefreshFailed(format!("{object} is not replicated")))?;
        let refreshes =
            self.core
                .gateway
                .apply_update(source, object, value, self.core.clock.now())?;
        let n = refreshes.len();
        for (cache_id, refresh) in refreshes {
            debug_assert_eq!(cache_id, cache.id());
            cache.install_refresh(refresh)?;
        }
        Ok(n)
    }

    /// Advances the shared clock (bounds widen as time passes).
    pub fn advance_clock(&self, dt: f64) {
        self.core.clock.advance(dt);
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.core.clock
    }

    /// Runs `f` against the cache (setup, inspection); serialized with
    /// query execution.
    pub fn with_cache<R>(&self, f: impl FnOnce(&mut CacheNode) -> R) -> R {
        f(&mut self.core.cache.lock())
    }

    /// A consistent snapshot of the aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        let mut s = *self.core.counters.lock();
        s.refreshes_coalesced = self.core.gateway.refreshes_coalesced();
        s.refreshes_forwarded = self.core.gateway.refreshes_forwarded();
        s
    }

    /// Stops accepting work and joins every worker.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.jobs = None; // closes the queue; workers drain and exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// Declarative service setup: tables, then rows bound to sources, then
/// [`build_direct`](ServiceBuilder::build_direct) or
/// [`build_channel`](ServiceBuilder::build_channel).
///
/// Mirrors [`trapp_system::Simulation`]'s wiring exactly (same object-id
/// assignment order, same subscription flow, same cost model), so a
/// service and a simulation built from the same specs hold identical
/// initial state — the property the correctness tests lean on.
pub struct ServiceBuilder {
    shape: BoundShape,
    initial_width: f64,
    cost_model: CostModel,
    config: ServiceConfig,
    tables: Vec<Table>,
    rows: Vec<(String, SourceId, Vec<BoundedValue>)>,
}

impl Default for ServiceBuilder {
    fn default() -> ServiceBuilder {
        ServiceBuilder {
            shape: BoundShape::Sqrt,
            initial_width: 1.0,
            cost_model: CostModel::unit(),
            config: ServiceConfig::default(),
            tables: Vec::new(),
            rows: Vec::new(),
        }
    }
}

impl ServiceBuilder {
    /// Starts a builder with √t bounds, width 1, unit costs.
    pub fn new() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// Sets the bound shape issued by all sources.
    pub fn shape(mut self, shape: BoundShape) -> Self {
        self.shape = shape;
        self
    }

    /// Sets the initial adaptive width parameter.
    pub fn initial_width(mut self, w: f64) -> Self {
        self.initial_width = w;
        self
    }

    /// Sets the refresh cost model.
    pub fn cost_model(mut self, m: CostModel) -> Self {
        self.cost_model = m;
        self
    }

    /// Sets the service configuration.
    pub fn config(mut self, config: ServiceConfig) -> Self {
        self.config = config;
        self
    }

    /// Adds a cached table (rows via [`ServiceBuilder::row`]).
    pub fn table(mut self, table: Table) -> Self {
        self.tables.push(table);
        self
    }

    /// Adds a row whose bounded cells hold initial master values owned by
    /// `source` (exact values for exact columns, exact floats as initial
    /// master values for bounded columns).
    pub fn row(
        mut self,
        table: impl Into<String>,
        source: SourceId,
        cells: Vec<BoundedValue>,
    ) -> Self {
        self.rows.push((table.into(), source, cells));
        self
    }

    /// Builds over the synchronous [`DirectTransport`].
    pub fn build_direct(self) -> Result<QueryService, TrappError> {
        let config = self.config;
        let (clock, cache, sources) = self.wire()?;
        let mut transport = DirectTransport::new();
        for source in sources {
            transport.add_source(source);
        }
        Ok(QueryService::start(cache, transport, clock, config))
    }

    /// Builds over the threaded [`ChannelTransport`] with the given
    /// simulated one-way latency per round-trip.
    pub fn build_channel(self, latency: Duration) -> Result<QueryService, TrappError> {
        let config = self.config;
        let (clock, cache, sources) = self.wire()?;
        let mut transport = ChannelTransport::new(latency);
        for source in sources {
            transport.add_source(source);
        }
        Ok(QueryService::start(cache, transport, clock, config))
    }

    /// Shared wiring: registers objects, subscribes the cache, prices
    /// tuples — transport-agnostic because subscription happens before the
    /// sources move behind a transport.
    fn wire(self) -> Result<(SimClock, CacheNode, Vec<Source>), TrappError> {
        self.cost_model.validate()?;
        let clock = SimClock::new();
        let now = clock.now();
        let mut cache = CacheNode::new(CacheId::new(1), clock.clone());
        for table in self.tables {
            cache.add_table(table)?;
        }

        let mut sources: Vec<Source> = Vec::new();
        let mut next_object = 1u64;
        for (table, source_id, cells) in self.rows {
            if !sources.iter().any(|s| s.id() == source_id) {
                sources.push(Source::new(source_id, self.shape));
            }
            let source = sources
                .iter_mut()
                .find(|s| s.id() == source_id)
                .expect("just ensured");

            let bounded_cols = cache
                .session()
                .catalog()
                .table(&table)?
                .schema()
                .bounded_columns();
            let tid: TupleId = cache
                .session_mut()
                .catalog_mut()
                .table_mut(&table)?
                .insert(cells.clone())?;

            let mut tuple_cost = 0.0;
            for &col in &bounded_cols {
                let initial = cells
                    .get(col)
                    .ok_or_else(|| TrappError::SchemaViolation("row arity".into()))?
                    .as_interval()?
                    .midpoint();
                let object = ObjectId::new(next_object);
                next_object += 1;
                source.register_object(object, initial)?;
                cache.bind_object(object, source_id, table.as_str(), tid, col)?;
                let refresh = source.subscribe(cache.id(), object, self.initial_width, now)?;
                cache.install_refresh(refresh)?;
                tuple_cost += self.cost_model.cost(source_id, object);
            }
            cache
                .session_mut()
                .catalog_mut()
                .table_mut(&table)?
                .set_cost(tid, tuple_cost.max(f64::MIN_POSITIVE))?;
        }
        Ok((clock, cache, sources))
    }
}
