//! The query service: a concurrent multi-client front-end over one or
//! more TRAPP cache shards.
//!
//! Clients [`submit`](QueryService::submit) TRAPP/AG SQL with precision
//! constraints from any thread; a pool of worker threads drains the shared
//! job queue. The service hash-partitions the group key space over
//! [`ServiceConfig::shards`] independent [`CacheNode`]s (see
//! [`crate::ShardRouter`]) and executes each query on the
//! narrowest footprint that can answer it:
//!
//! * **single-shard** — a query whose predicate pins the partition column
//!   to one group runs entirely on that group's shard: plan under that
//!   shard's lock, fetch through that shard's gateway, install + answer
//!   under the lock again. Queries for different groups proceed in
//!   parallel with *no shared lock at all* — the scaling mechanism.
//! * **scatter-gather** — a query whose group set spans shards asks every
//!   shard for its shape-generic partial
//!   ([`trapp_core::query_plan::QueryPartial`]) under *all* shard locks at
//!   once (a short, consistent snapshot — updates cannot interleave
//!   between shards mid-gather), merges them into exactly the input one
//!   big cache would hold, plans *globally* over the merged input, splits
//!   the plan back per shard, fetches every shard's slice **concurrently**
//!   with no locks held, installs per shard, and recomputes. Deriving
//!   bounds only from the merged input keeps the sharded answer
//!   bit-equivalent to the single-cache answer. Every shape scatters:
//!   scalar aggregates merge via
//!   [`trapp_core::merge::merge_partials`], `GROUP BY` queries merge
//!   per-group partials by key
//!   ([`trapp_core::merge::merge_grouped_partials`] — with the group key
//!   as the partition key each group's rows are co-located on one shard),
//!   and two-table joins gather each side's base rows
//!   ([`trapp_core::merge::merge_table_slices`]) and run the ordinary
//!   join pipeline over the merged tables, fetching one heuristic
//!   candidate per round through the owning shard's gateway.
//!
//! Within each shard the two PR-1 traffic reducers still apply: **batched
//! source round-trips** (one [`Transport::request_refresh_batch`] per
//! source per plan) and **refresh coalescing** (a per-shard single-flight
//! [`RefreshGateway`](crate::RefreshGateway); keying the in-flight table
//! per shard is free because objects never span shards).
//!
//! Execution stays phased so source round-trips run *outside* every cache
//! lock, for every shape — scalar, `GROUP BY`, and join alike:
//!
//! 1. **plan** (shard lock): materialize bounds at the current instant and
//!    lower the query into a [`trapp_core::query_plan::QueryPlan`] — the
//!    cache-only answer(s) plus, where the constraint is unmet, the
//!    refresh set per unit;
//! 2. **fetch** (no lock): resolve the plan's tuples to replicated objects
//!    and pull them through the owning shard's gateway — concurrent
//!    queries' round-trips overlap here, and cross-shard fetches of one
//!    query overlap with *each other*;
//! 3. **install + plan again** (shard lock): install the refreshes and
//!    re-derive; for scalar/grouped plans the CHOOSE_REFRESH guarantee
//!    makes the second pass satisfied from cache unless the clock advanced
//!    concurrently, while join plans iterate one heuristic tuple per
//!    round. Only iterative mode (§8.2), whose refresh choices depend on
//!    live master values, still executes under the shard lock.
//!
//! If one shard of a scatter fails mid-fetch, the refreshes that did
//! arrive are still installed (their sources already narrowed their
//! tracked bounds — dropping them would desynchronize cache and Refresh
//! Monitor) and the query returns
//! [`TrappError::PartialResult`] instead of a bound that silently ignores
//! the missing shard.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use trapp_bounds::{AdaptiveWidth, BoundShape};
use trapp_core::executor::QueryResult;
use trapp_core::group_by::{render_key, GroupResult};
use trapp_core::plan::{bind_query, BoundQuery, QuerySource};
use trapp_core::query_plan::{
    assemble_units, plan_join_round, plan_unit, Exclusions, QueryOutcome, QueryPartial, QueryPlan,
};
use trapp_core::refresh::iterative::IterativeHeuristic;
use trapp_core::{merge_grouped_partials, merge_table_slices, BoundedAnswer};
use trapp_storage::Table;
use trapp_system::{
    CacheNode, ChannelTransport, ChaosConfig, ChaosControl, ChaosTransport, CompletionTransport,
    CostModel, DirectTransport, FetchPool, SimClock, Source, Transport,
};
use trapp_types::{
    shard_of, BoundedValue, CacheId, Interval, ObjectId, PartialFailure, SourceFailure, SourceId,
    TrappError, TupleId, Value,
};

use crate::admission::{Admission, AdmissionConfig, AdmissionController};
use crate::gateway::{FetchOutcome, FetchStats, PendingFetch, RetryPolicy, DEFAULT_AWAIT_TIMEOUT};
use crate::health::HealthConfig;
use crate::router::{Route, Shard, ShardRouter, TidMap};

/// Safety valve for the scatter-gather loop: each extra round means a
/// concurrent clock advance re-widened bounds mid-query.
const MAX_SCATTER_ROUNDS: usize = 8;

/// Service tuning knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the query queue.
    pub workers: usize,
    /// Number of cache shards the group key space is hash-partitioned
    /// over. `1` reproduces the single-cache service exactly.
    pub shards: usize,
    /// Share refreshes across queries via each shard gateway's in-flight
    /// table.
    pub coalesce: bool,
    /// Serve refresh plans with one round-trip per source (`false` falls
    /// back to the per-object seed path — the measurable baseline).
    pub batch_refreshes: bool,
    /// Plan queries from incremental band views (memoized classified
    /// inputs, invalidated per tuple) instead of rescanning the cached
    /// tables on every plan pass. Answers, plans, and refresh costs are
    /// bit-identical either way; `false` keeps the full-scan planner as a
    /// measurable baseline.
    pub cache_views: bool,
    /// Plan multi-tuple join refresh rounds: each round fetches the whole
    /// provable prefix of the one-tuple heuristic's pick sequence instead
    /// of a single tuple, collapsing round counts (and round-trips) on
    /// join-heavy queries. Answers, bounds, and refresh sets are
    /// bit-identical either way; `false` keeps the §7 one-tuple-per-round
    /// loop as a measurable baseline.
    pub batch_join_rounds: bool,
    /// What to do when a query's precision constraint cannot be met
    /// because sources are down. See [`DegradationPolicy`].
    pub degradation: DegradationPolicy,
    /// Per-round-trip deadline / retry / backoff policy applied by every
    /// shard's gateway.
    pub retry: RetryPolicy,
    /// How long a query waits for another query's in-flight fetch of the
    /// same object before reporting a typed timeout.
    pub gateway_await_timeout: Duration,
    /// Per-source circuit-breaker tuning.
    pub health: HealthConfig,
    /// Admission-control watermarks — the widen/shed ladder applied at
    /// [`QueryService::submit`] before a query reaches the worker queue.
    /// Defaults to fully off. See [`AdmissionConfig`].
    pub admission: AdmissionConfig,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: 4,
            shards: 1,
            coalesce: true,
            batch_refreshes: true,
            cache_views: true,
            batch_join_rounds: true,
            degradation: DegradationPolicy::default(),
            retry: RetryPolicy::default(),
            gateway_await_timeout: DEFAULT_AWAIT_TIMEOUT,
            health: HealthConfig::default(),
            admission: AdmissionConfig::default(),
        }
    }
}

/// What the service answers when sources are unreachable and the
/// precision constraint cannot be guaranteed over the tuples that remain
/// refreshable.
///
/// Either way, cached bounds stay *correct* — TRAPP bounds contain the
/// true value at any staleness — so the choice is only about how the
/// unmet constraint surfaces.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum DegradationPolicy {
    /// Refuse: return a structured [`TrappError::PartialResult`] naming
    /// the failed shards and sources. No wrong answer can ever be
    /// returned, at the price of availability.
    #[default]
    Strict,
    /// Degrade: refresh every available tuple that helps, then return the
    /// best achievable bound as a *successful* reply with
    /// [`ServiceReply::degraded`] describing the gap. The returned bound
    /// still contains the exact answer; it is merely wider than asked.
    BestEffort,
}

/// How a reply fell short of its constraint — because sources were dark
/// ([`DegradationPolicy::BestEffort`]), or because the service traded
/// precision for time (a `DEADLINE` the full-precision plan could not
/// meet, or admission-control widening under queue pressure).
#[derive(Clone, Debug, PartialEq)]
pub struct DegradedInfo {
    /// The sources that were unreachable while this query planned
    /// (breaker-open ones plus those that failed mid-query), ascending.
    /// Empty when the degradation was purely load-driven.
    pub dark_sources: Vec<SourceId>,
    /// The query's original `WITHIN` constraint, before any widening.
    pub requested_width: Option<f64>,
    /// The width actually achieved (max over groups for `GROUP BY`).
    pub achieved_width: f64,
    /// `true` when the constraint was deliberately relaxed for load
    /// reasons — a deadline the full-precision plan could not fit, or
    /// admission-control widening — rather than (only) dark sources.
    pub load_shed: bool,
}

/// One query's answer plus its per-query service accounting.
#[derive(Clone, Debug)]
pub struct ServiceReply {
    /// The executor's result (bounded answer, refresh plan, cost). For
    /// scatter-gathered queries, `refreshed` is reported in the global
    /// tuple-id space. For `GROUP BY` queries this is the *roll-up* of
    /// [`ServiceReply::groups`]: `answer` / `initial_answer` are the hulls
    /// of the group ranges, `refreshed` and `refresh_cost` are totals,
    /// `rounds` the per-group maximum, and `satisfied` requires every
    /// group to be satisfied.
    pub result: QueryResult,
    /// Per-group results for `GROUP BY` queries in deterministic
    /// key-sorted order — the authoritative grouped answer. Empty for
    /// scalar and join queries.
    pub groups: Vec<GroupResult>,
    /// Refreshes this query obtained from a shared in-flight table
    /// instead of a source — work another query already paid for.
    pub refreshes_saved: u64,
    /// Transport round-trips this query actually issued (all shards).
    pub round_trips: u64,
    /// Time spent executing (excludes queue wait).
    pub exec_time: Duration,
    /// `Some` when this is a best-effort degraded answer: the precision
    /// constraint could not be guaranteed because sources were dark, and
    /// the bound returned is the best achievable over available tuples
    /// (still guaranteed to contain the exact answer). `None` for fully
    /// satisfied answers and under [`DegradationPolicy::Strict`] (which
    /// errors instead).
    pub degraded: Option<DegradedInfo>,
}

/// Rolls per-group results up into one [`QueryResult`]; see
/// [`ServiceReply::result`].
fn rollup(groups: &[GroupResult]) -> QueryResult {
    let hull = |range_of: &dyn Fn(&GroupResult) -> Interval| {
        groups
            .iter()
            .fold(None::<(f64, f64)>, |acc, g| {
                let iv = range_of(g);
                Some(match acc {
                    None => (iv.lo(), iv.hi()),
                    Some((lo, hi)) => (lo.min(iv.lo()), hi.max(iv.hi())),
                })
            })
            .map(|(lo, hi)| Interval::new_unchecked(lo, hi))
            // Zero groups (empty table): a degenerate point hull.
            .unwrap_or_else(|| Interval::new_unchecked(0.0, 0.0))
    };
    QueryResult {
        answer: BoundedAnswer::new(hull(&|g| g.result.answer.range)),
        initial_answer: BoundedAnswer::new(hull(&|g| g.result.initial_answer.range)),
        refreshed: groups
            .iter()
            .flat_map(|g| g.result.refreshed.iter().cloned())
            .collect(),
        refresh_cost: groups.iter().map(|g| g.result.refresh_cost).sum(),
        rounds: groups.iter().map(|g| g.result.rounds).max().unwrap_or(0),
        satisfied: groups.iter().all(|g| g.result.satisfied),
    }
}

/// Aggregate service counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Queries answered successfully.
    pub queries: u64,
    /// Queries that returned an error.
    pub errors: u64,
    /// Queries answered by cross-shard scatter-gather.
    pub scatter_queries: u64,
    /// Refreshes served from in-flight tables across all queries/shards.
    pub refreshes_coalesced: u64,
    /// Refreshes forwarded to sources.
    pub refreshes_forwarded: u64,
    /// Transport round-trips issued.
    pub round_trips: u64,
    /// Queries answered best-effort with an unmet precision constraint.
    pub degraded_queries: u64,
    /// Queries whose constraint was widened (or dropped) mid-flight to
    /// honor a `DEADLINE`.
    pub deadline_widened: u64,
    /// Queries admitted with an admission-control-widened constraint.
    pub admission_widened: u64,
    /// Queries shed at the front door with [`TrappError::Overloaded`].
    pub admission_rejected: u64,
    /// Live queue depth at the moment of the snapshot (submitted, not yet
    /// picked up by a worker).
    pub queue_depth: u64,
    /// The shared fetch pool's *actual* current thread count (reflects
    /// burst resizing); `0` when the service has no resizable pool.
    pub fetch_pool_threads: u64,
    /// Total time queries spent waiting for a worker, µs.
    pub queue_wait_us: u64,
    /// Total time spent in plan phases (under shard locks), µs.
    pub plan_us: u64,
    /// Total time spent in fetch phases (no locks, source round-trips), µs.
    pub fetch_us: u64,
    /// Total time spent installing fetched refreshes, µs.
    pub install_us: u64,
}

struct Job {
    sql: String,
    /// When [`QueryService::submit`] accepted the query — queue wait and
    /// any `DEADLINE` both count from here, so time spent waiting for a
    /// worker is charged against the deadline like any other latency.
    enqueued: Instant,
    /// Admission control asked for this query's constraint to be widened.
    widen: bool,
    reply: Sender<Result<ServiceReply, TrappError>>,
}

/// Per-query execution context threaded through the phased loop: the
/// deadline budget (counted from enqueue) plus the per-phase latency and
/// degradation accounting folded into [`ServiceStats`] afterwards.
struct QueryCtx {
    enqueued: Instant,
    /// The query's `DEADLINE`, parsed; `None` runs unbounded.
    deadline: Option<Duration>,
    /// Admission control asked for widening (set before parse).
    widen: bool,
    /// The original `WITHIN` before admission widening, when widened.
    pre_widened: Option<f64>,
    /// The constraint was widened/dropped mid-flight for the deadline.
    deadline_widened: bool,
    plan_us: u64,
    fetch_us: u64,
    install_us: u64,
}

impl QueryCtx {
    fn new(enqueued: Instant, widen: bool) -> QueryCtx {
        QueryCtx {
            enqueued,
            deadline: None,
            widen,
            pre_widened: None,
            deadline_widened: false,
            plan_us: 0,
            fetch_us: 0,
            install_us: 0,
        }
    }
}

/// The typed refusal for a blown deadline.
fn deadline_error(limit: Duration, elapsed: Duration, honorable: Option<f64>) -> TrappError {
    TrappError::DeadlineExceeded {
        deadline_ms: limit.as_millis() as u64,
        elapsed_ms: elapsed.as_millis() as u64,
        honorable_within: honorable,
    }
}

/// One deadline-driven widening step: grows the query's `WITHIN` through
/// an [`AdaptiveWidth`] controller seeded from the constraint itself
/// (grow ×2 per step, capped at 1024× — the §6 knapsack cost falls
/// monotonically as the constraint widens, so each step strictly shrinks
/// the refresh plan). Returns `false` when the constraint cannot widen
/// further (absent, non-positive, or at cap) — the caller then drops it
/// entirely and answers from cache.
fn widen_step(query: &mut trapp_sql::Query, widener: &mut Option<AdaptiveWidth>) -> bool {
    let Some(w) = query.within else { return false };
    if w.is_nan() || w <= 0.0 {
        return false;
    }
    if widener.is_none() {
        match AdaptiveWidth::new(w, 2.0, 0.5, w, w * 1024.0) {
            Ok(ctl) => *widener = Some(ctl),
            Err(_) => return false,
        }
    }
    let ctl = widener.as_mut().expect("seeded above");
    let before = ctl.width();
    ctl.on_value_initiated_refresh();
    let after = ctl.width();
    if after <= before {
        return false;
    }
    query.within = Some(after);
    true
}

struct ServiceCore {
    router: ShardRouter,
    clock: SimClock,
    batch_refreshes: bool,
    degradation: DegradationPolicy,
    counters: Mutex<ServiceStats>,
    admission: Arc<AdmissionController>,
    /// EWMA of observed fetch-phase cost rate, µs of wall time per unit
    /// of planned refresh cost — the deadline guard's estimator for "can
    /// this plan's fetch fit the remaining budget?". `0.0` until the
    /// first fetch is observed (optimistic cold start: the first fetch
    /// always runs, and its measurement seeds the estimate).
    fetch_rate: Mutex<f64>,
}

/// Attribution one unit (whole query, or one group) accumulates across
/// fetch rounds: the serving layer pays for refreshes round by round, but
/// the final [`QueryPlan::Ready`] pass sees pinned cells and reports
/// nothing refreshed — this records what the query actually planned and
/// paid for, keyed by rendered group key.
#[derive(Default)]
struct UnitAttr {
    /// The unit's cache-only answer from its first planning round.
    initial: Option<BoundedAnswer>,
    /// Tuples refreshed (global ids), each reported once.
    refreshed: Vec<(String, TupleId)>,
    /// Total planned refresh cost.
    cost: f64,
    /// Rounds in which this unit fetched something.
    rounds: usize,
}

/// Patches accumulated attribution into the final planned outcome.
fn patch_outcome(outcome: QueryOutcome, attr: &HashMap<String, UnitAttr>) -> QueryOutcome {
    let patch = |result: &mut QueryResult, rendered: &str| {
        if let Some(a) = attr.get(rendered) {
            if let Some(initial) = a.initial {
                result.initial_answer = initial;
            }
            result.refreshed = a.refreshed.clone();
            result.refresh_cost = a.cost;
            result.rounds = a.rounds;
        }
    };
    match outcome {
        QueryOutcome::Scalar(mut r) => {
            patch(&mut r, &render_key(&Vec::new()));
            QueryOutcome::Scalar(r)
        }
        QueryOutcome::Grouped(mut groups) => {
            for g in &mut groups {
                patch(&mut g.result, &render_key(&g.key));
            }
            QueryOutcome::Grouped(groups)
        }
    }
}

impl ServiceCore {
    fn run_query(
        &self,
        sql: &str,
        enqueued: Instant,
        widen: bool,
    ) -> Result<ServiceReply, TrappError> {
        let started = Instant::now();
        let queue_wait = started.duration_since(enqueued);
        let mut ctx = QueryCtx::new(enqueued, widen);
        let outcome = self.run_query_inner(sql, &mut ctx);
        let exec_time = started.elapsed();

        let mut counters = self.counters.lock();
        counters.queue_wait_us += queue_wait.as_micros() as u64;
        counters.plan_us += ctx.plan_us;
        counters.fetch_us += ctx.fetch_us;
        counters.install_us += ctx.install_us;
        counters.deadline_widened += u64::from(ctx.deadline_widened);
        match outcome {
            Ok((outcome, stats, scattered, degraded)) => {
                counters.queries += 1;
                counters.round_trips += stats.round_trips;
                counters.scatter_queries += u64::from(scattered);
                counters.degraded_queries += u64::from(degraded.is_some());
                let (result, groups) = match outcome {
                    QueryOutcome::Scalar(result) => (result, Vec::new()),
                    QueryOutcome::Grouped(groups) => (rollup(&groups), groups),
                };
                Ok(ServiceReply {
                    result,
                    groups,
                    refreshes_saved: stats.coalesced,
                    round_trips: stats.round_trips,
                    exec_time,
                    degraded,
                })
            }
            Err(e) => {
                counters.errors += 1;
                Err(e)
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn run_query_inner(
        &self,
        sql: &str,
        ctx: &mut QueryCtx,
    ) -> Result<(QueryOutcome, FetchStats, bool, Option<DegradedInfo>), TrappError> {
        let mut query = trapp_sql::parse_query(sql)?;
        // `DEADLINE` is in milliseconds; the parser guarantees a finite
        // non-negative value.
        ctx.deadline = query.deadline.map(|ms| Duration::from_secs_f64(ms / 1e3));
        // Admission widening happens right after parse, before routing:
        // the relaxed constraint is what plans, and the reply carries
        // `DegradedInfo` naming the original ask.
        if ctx.widen {
            if let Some(w) = query.within {
                ctx.pre_widened = Some(w);
                query.within = Some(w * self.admission.widen_factor());
            }
        }
        let route = self.router.route(&query);
        let scattered = matches!(route, Route::Scatter);
        self.run_routed(&query, route, ctx)
            .map(|(outcome, stats, degraded)| (outcome, stats, scattered, degraded))
    }

    /// The deadline guard's estimate of one fetch phase's wall time for a
    /// plan of the given §6 refresh cost.
    fn estimate_fetch_time(&self, cost: f64) -> Duration {
        Duration::from_secs_f64((*self.fetch_rate.lock() * cost.max(0.0)) / 1e6)
    }

    /// Folds one observed fetch phase into the EWMA cost rate.
    fn observe_fetch(&self, cost: f64, took: Duration) {
        if cost <= 0.0 {
            return;
        }
        let sample = took.as_secs_f64() * 1e6 / cost;
        let mut rate = self.fetch_rate.lock();
        *rate = if *rate == 0.0 {
            sample
        } else {
            0.7 * *rate + 0.3 * sample
        };
    }

    /// The shape-generic phased execution loop — one body for every route
    /// and every query shape:
    ///
    /// 1. **plan** (shard lock(s)): lower the query into a
    ///    [`QueryPlan`] — locally for a single-shard route, from merged
    ///    per-shard partials for scatter;
    /// 2. **fetch** (no locks): resolve every unit's tuples to
    ///    `(source, objects)` with short per-shard locks, submit every
    ///    shard's slice through its gateway before waiting on any —
    ///    join fetches run out here exactly like scalar ones;
    /// 3. **install** (per-shard locks) and plan again. Complete
    ///    (scalar/grouped) plans normally finish on the second pass; join
    ///    plans iterate one heuristic tuple per round until converged.
    fn run_routed(
        &self,
        query: &trapp_sql::Query,
        route: Route,
        ctx: &mut QueryCtx,
    ) -> Result<(QueryOutcome, FetchStats, Option<DegradedInfo>), TrappError> {
        let mut stats = FetchStats::default();
        let mut attr: HashMap<String, UnitAttr> = HashMap::new();
        // Re-planning after a *complete* round means a concurrent clock
        // advance re-widened bounds mid-query; join rounds are expected
        // and budgeted separately.
        let mut widen_rounds = 0usize;
        let mut join_rounds = 0usize;
        // Sources this query itself saw fail (best-effort mode): excluded
        // from its later planning rounds even before their breakers open.
        // Grows monotonically, so the fault loop terminates.
        let mut query_dark: HashSet<SourceId> = HashSet::new();
        let mut fault_rounds = 0usize;

        // ---- Deadline machinery. The budget counts from *enqueue*, so
        // queue wait is charged like any other latency. `eff` is the
        // effective query — clone-on-first-widen; the unwidened path
        // borrows the parsed query and allocates nothing, keeping the
        // deadline-free path bit-identical to before.
        let deadline_limit = ctx.deadline;
        let fetch_deadline: Option<Instant> = deadline_limit.map(|d| ctx.enqueued + d);
        let mut eff: Option<trapp_sql::Query> = None;
        let mut widener: Option<AdaptiveWidth> = None;
        // Strict mode past the point of no return: keep widening and
        // re-planning *without fetching* purely to discover the narrowest
        // honorable constraint to report in the typed refusal.
        let mut strict_probe = false;
        if let Some(limit) = deadline_limit {
            // Already blown before any work (queue wait ate the budget):
            // strict refuses outright; best-effort answers from cache
            // alone — a cache-only plan is `Ready` at zero fetch cost.
            let elapsed = ctx.enqueued.elapsed();
            if elapsed >= limit {
                match self.degradation {
                    DegradationPolicy::Strict => {
                        return Err(deadline_error(limit, elapsed, None));
                    }
                    DegradationPolicy::BestEffort => {
                        ctx.deadline_widened = true;
                        eff.get_or_insert_with(|| query.clone()).within = None;
                    }
                }
            }
        }

        loop {
            let q: &trapp_sql::Query = eff.as_ref().unwrap_or(query);
            // ---- Dark set: breaker-open sources plus this query's own
            // observed failures. Planning excludes their tuples so
            // CHOOSE_REFRESH spends no round-trips on a source that
            // cannot answer.
            let mut dark = query_dark.clone();
            match route {
                Route::Single(s) => dark.extend(self.router.shard(s).health.dark_sources()),
                Route::Scatter => {
                    for shard in self.router.shards() {
                        dark.extend(shard.health.dark_sources());
                    }
                }
            }
            let exclusions = self.exclusions_for(&dark, route);

            // ---- Plan phase (under the cache lock(s)) ----
            let plan_started = Instant::now();
            let (plan, now, max_join_rounds) = match route {
                Route::Single(s) => {
                    let shard = self.router.shard(s);
                    let mut cache = shard.cache.lock();
                    cache.materialize()?;
                    let now = self.clock.now();
                    let max_join_rounds = cache.session().config.max_refresh_rounds;
                    match cache.session().plan_query_excluding(q, &exclusions)? {
                        QueryPlan::Iterative => {
                            // Iterative mode (§8.2) picks each refresh from
                            // live master values: execution stays under the
                            // shard lock, flowing through the shard gateway
                            // so coalescing and the global counters stay
                            // coherent. Its refresh choices cannot be
                            // costed ahead of time, so it is exempt from
                            // the mid-flight deadline guard (the pre-
                            // execution shed above still applies).
                            return if q.group_by.is_empty() {
                                let mut result = cache.execute(q, &shard.gateway)?;
                                for (table, tid) in &mut result.refreshed {
                                    *tid = shard.global_tid(table, *tid);
                                }
                                Ok((QueryOutcome::Scalar(result), stats, None))
                            } else {
                                let mut groups = cache.execute_grouped(q, &shard.gateway)?;
                                for g in &mut groups {
                                    for (table, tid) in &mut g.result.refreshed {
                                        *tid = shard.global_tid(table, *tid);
                                    }
                                }
                                Ok((QueryOutcome::Grouped(groups), stats, None))
                            };
                        }
                        plan => (plan, now, max_join_rounds),
                    }
                }
                Route::Scatter => self.plan_scatter(q, &exclusions)?,
            };
            ctx.plan_us += plan_started.elapsed().as_micros() as u64;

            let fp = match plan {
                QueryPlan::Ready(outcome) => {
                    // Strict never returns a *late* answer: if the
                    // deadline passed while planning/fetching (or this
                    // Ready is the end of an honorable-width probe), the
                    // installs above stand but the reply is the typed
                    // refusal.
                    if matches!(self.degradation, DegradationPolicy::Strict) {
                        if let Some(limit) = deadline_limit {
                            let elapsed = ctx.enqueued.elapsed();
                            if strict_probe || elapsed >= limit {
                                let honorable =
                                    eff.as_ref().and_then(|q| q.within).filter(|_| strict_probe);
                                return Err(deadline_error(limit, elapsed, honorable));
                            }
                        }
                    }
                    let outcome = patch_outcome(outcome, &attr);
                    let (all_satisfied, achieved_width) = match &outcome {
                        QueryOutcome::Scalar(r) => (r.satisfied, r.answer.width()),
                        QueryOutcome::Grouped(gs) => (
                            gs.iter().all(|g| g.result.satisfied),
                            gs.iter()
                                .map(|g| g.result.answer.width())
                                .fold(0.0, f64::max),
                        ),
                    };
                    // The user's original ask, before admission widening.
                    let requested_width = ctx.pre_widened.or(query.within);
                    let load_shed = ctx.deadline_widened || ctx.pre_widened.is_some();
                    if !all_satisfied && !dark.is_empty() {
                        // The constraint is unmet *because* sources are
                        // dark: every refreshable tuple has been used.
                        match self.degradation {
                            DegradationPolicy::Strict => {
                                return Err(self.unavailable_error(route, &dark));
                            }
                            DegradationPolicy::BestEffort => {
                                let mut dark_sources: Vec<SourceId> =
                                    dark.iter().copied().collect();
                                dark_sources.sort();
                                return Ok((
                                    outcome,
                                    stats,
                                    Some(DegradedInfo {
                                        dark_sources,
                                        requested_width,
                                        achieved_width,
                                        load_shed,
                                    }),
                                ));
                            }
                        }
                    }
                    if load_shed {
                        // Satisfied — but only because the constraint was
                        // relaxed for load (deadline widening, or
                        // admission widening under either policy). The
                        // bound still contains the exact answer; the
                        // reply names the original ask it fell short of.
                        let mut dark_sources: Vec<SourceId> = dark.iter().copied().collect();
                        dark_sources.sort();
                        return Ok((
                            outcome,
                            stats,
                            Some(DegradedInfo {
                                dark_sources,
                                requested_width,
                                achieved_width,
                                load_shed: true,
                            }),
                        ));
                    }
                    return Ok((outcome, stats, None));
                }
                QueryPlan::Iterative => {
                    // `plan_scatter` rejects iterative mode with a typed
                    // error before producing a plan; only the single-shard
                    // arm (handled above) can lower into this.
                    return Err(TrappError::Internal(
                        "iterative plan escaped the locked fallback".into(),
                    ));
                }
                QueryPlan::NeedsFetch(fp) => fp,
            };

            // ---- Deadline guard: can this plan's fetch fit the budget?
            // The §6 knapsack cost is the estimator's input — CHOOSE_REFRESH
            // cost falls monotonically as the constraint widens, so when
            // the full-precision plan does not fit, widening one doubling
            // at a time walks toward the *narrowest honorable* constraint.
            // A widen re-plan consumes no widen/join round budget (the
            // `continue` sits above the increments below).
            let round_cost: f64 = fp
                .units
                .iter()
                .filter_map(|u| u.fetch.as_ref())
                .map(|f| f.refresh_cost)
                .sum();
            if let Some(limit) = deadline_limit {
                let elapsed = ctx.enqueued.elapsed();
                let remaining = limit.checked_sub(elapsed);
                let est = self.estimate_fetch_time(round_cost);
                let fits = remaining.is_some_and(|r| est <= r);
                if fits {
                    if strict_probe {
                        // The probe found a width whose plan fits what is
                        // left of the budget: report it and refuse.
                        return Err(deadline_error(
                            limit,
                            elapsed,
                            eff.as_ref().and_then(|q| q.within),
                        ));
                    }
                } else {
                    match self.degradation {
                        DegradationPolicy::Strict => strict_probe = true,
                        DegradationPolicy::BestEffort => ctx.deadline_widened = true,
                    }
                    let wq = eff.get_or_insert_with(|| query.clone());
                    if remaining.is_none() || !widen_step(wq, &mut widener) {
                        // Past the deadline (or the ladder is exhausted):
                        // drop the constraint; the next plan pass is
                        // `Ready` from cache at zero fetch cost.
                        wq.within = None;
                    }
                    continue;
                }
            }

            let round_was_complete = fp.complete;
            if fp.complete {
                widen_rounds += 1;
                if widen_rounds > MAX_SCATTER_ROUNDS {
                    return Err(TrappError::Internal(format!(
                        "phased execution did not converge in {widen_rounds} rounds \
                         (bounds kept re-widening under the refresh plan)"
                    )));
                }
            } else {
                join_rounds += 1;
                if join_rounds > max_join_rounds {
                    return Err(TrappError::Internal(format!(
                        "join refresh did not converge in {join_rounds} rounds"
                    )));
                }
            }

            // ---- Attribute and localize the fetch set ----
            let shard_count = self.router.shard_count();
            let mut work: Vec<Vec<(String, TupleId)>> = vec![Vec::new(); shard_count];
            // A batched join round may split one unit's picks across
            // several same-key units (one per side-run); that is still one
            // refresh round for the unit, counted once per key.
            let mut counted_keys: HashSet<String> = HashSet::new();
            for unit in &fp.units {
                let rendered = render_key(&unit.key);
                let entry = attr.entry(rendered.clone()).or_default();
                if entry.initial.is_none() {
                    entry.initial = Some(unit.initial);
                }
                let Some(fetch) = &unit.fetch else { continue };
                entry.cost += fetch.refresh_cost;
                if counted_keys.insert(rendered) {
                    entry.rounds += 1;
                }
                for &tid in &fetch.tuples {
                    let (s, local, global) = match route {
                        Route::Single(s) => {
                            (s, tid, self.router.shard(s).global_tid(&fetch.table, tid))
                        }
                        Route::Scatter => {
                            let (s, local) = self.router.locate(&fetch.table, tid)?;
                            (s, local, tid)
                        }
                    };
                    // A later round (concurrent clock advance) may re-plan
                    // a tuple already refreshed; report each tuple once.
                    if !entry
                        .refreshed
                        .iter()
                        .any(|(t, id)| *id == global && t == &fetch.table)
                    {
                        entry.refreshed.push((fetch.table.clone(), global));
                    }
                    work[s].push((fetch.table.clone(), local));
                }
            }

            // Resolve tuples to (source, objects) with one short lock per
            // owning shard.
            let mut fetch_plans: Vec<Vec<(SourceId, Vec<ObjectId>)>> =
                vec![Vec::new(); shard_count];
            for (s, items) in work.iter().enumerate() {
                if items.is_empty() {
                    continue;
                }
                let cache = self.router.shard(s).cache.lock();
                let mut per_source: BTreeMap<SourceId, Vec<ObjectId>> = BTreeMap::new();
                for (table, tid) in items {
                    for (object, source) in cache.objects_backing(table, *tid)? {
                        per_source.entry(source).or_default().push(object);
                    }
                }
                fetch_plans[s] = per_source.into_iter().collect();
            }

            // ---- Fetch phase: submit every shard's slice through its
            // gateway *before* waiting on any of them — the round-trips
            // ride the transport's completion queues and overlap each
            // other and other queries' fetches, with zero per-round
            // thread spawns.
            let fetch_started = Instant::now();
            let pending: Vec<(usize, PendingFetch)> = fetch_plans
                .iter()
                .enumerate()
                .filter(|(_, plan)| !plan.is_empty())
                .map(|(s, plan)| {
                    let shard = self.router.shard(s);
                    (
                        s,
                        shard.gateway.begin_fetch(
                            shard.cache_id,
                            now,
                            plan,
                            self.batch_refreshes,
                            fetch_deadline,
                        ),
                    )
                })
                .collect();
            let outcomes: Vec<(usize, FetchOutcome)> = pending
                .into_iter()
                .map(|(s, p)| (s, self.router.shard(s).gateway.finish_fetch(p)))
                .collect();
            let fetch_took = fetch_started.elapsed();
            ctx.fetch_us += fetch_took.as_micros() as u64;
            self.observe_fetch(round_cost, fetch_took);

            // ---- Install phase: everything that arrived goes in — even
            // on a failed shard, its sources already narrowed their
            // tracked bounds — then a failure surfaces as an error (or,
            // best-effort, a degraded re-plan) rather than a bound that
            // pretends the lost refreshes are exact.
            let mut surviving: Vec<usize> = Vec::new();
            let mut shard_failures: Vec<(usize, Vec<(SourceId, TrappError)>)> = Vec::new();
            let install_started = Instant::now();
            for (s, outcome) in outcomes {
                let mut cache = self.router.shard(s).cache.lock();
                for refresh in outcome.refreshes {
                    cache.install_refresh(refresh)?;
                }
                stats.round_trips += outcome.stats.round_trips;
                stats.coalesced += outcome.stats.coalesced;
                stats.forwarded += outcome.stats.forwarded;
                if outcome.failures.is_empty() {
                    surviving.push(s);
                } else {
                    shard_failures.push((s, outcome.failures));
                }
            }
            ctx.install_us += install_started.elapsed().as_micros() as u64;
            if !shard_failures.is_empty() {
                let first_error = shard_failures[0].1[0].1.clone();
                match self.degradation {
                    DegradationPolicy::Strict => {
                        // A deadline that ran out mid-fetch surfaces as
                        // pure timeouts; once the refreshes that did land
                        // are installed (above — sources already narrowed
                        // their tracked bounds), report the blown
                        // deadline, not the transport symptom.
                        if let Some(limit) = deadline_limit {
                            let elapsed = ctx.enqueued.elapsed();
                            let all_timeouts = shard_failures.iter().all(|(_, fs)| {
                                fs.iter()
                                    .all(|(_, e)| matches!(e, TrappError::Timeout { .. }))
                            });
                            if all_timeouts && elapsed >= limit {
                                return Err(deadline_error(limit, elapsed, None));
                            }
                        }
                        return Err(match route {
                            Route::Single(_) => first_error,
                            Route::Scatter => TrappError::PartialResult(Box::new(PartialFailure {
                                surviving_shards: surviving,
                                failed_shards: shard_failures.iter().map(|(s, _)| *s).collect(),
                                sources: shard_failures
                                    .into_iter()
                                    .flat_map(|(_, fs)| fs)
                                    .map(|(source, cause)| SourceFailure {
                                        source,
                                        cause: Box::new(cause),
                                    })
                                    .collect(),
                            })),
                        });
                    }
                    DegradationPolicy::BestEffort => {
                        // Exclude the failed sources from this query's
                        // remaining rounds and re-plan over what is left.
                        // `query_dark` only grows (an excluded source is
                        // never fetched again), so this converges; the
                        // fault budget is a safety valve.
                        fault_rounds += 1;
                        if fault_rounds > MAX_SCATTER_ROUNDS {
                            return Err(first_error);
                        }
                        query_dark.extend(
                            shard_failures
                                .iter()
                                .flat_map(|(_, fs)| fs.iter().map(|(src, _)| *src)),
                        );
                        // Refund the round budget: re-planning after a
                        // fault is recovery, not bound re-widening.
                        if round_was_complete {
                            widen_rounds = widen_rounds.saturating_sub(1);
                        } else {
                            join_rounds = join_rounds.saturating_sub(1);
                        }
                        continue;
                    }
                }
            }
            // Loop: plan again over the installed refreshes. For complete
            // plans the CHOOSE_REFRESH guarantee makes the next pass Ready
            // unless the clock advanced; join rounds iterate.
        }
    }

    /// The tuples planning must treat as unrefreshable: every cached cell
    /// whose backing object lives on a dark source, in the tuple-id space
    /// the route plans in (shard-local for a single-shard route, global
    /// for scatter). Empty dark set short-circuits to no exclusions — the
    /// healthy fast path allocates nothing.
    fn exclusions_for(&self, dark: &HashSet<SourceId>, route: Route) -> Exclusions {
        let mut ex = Exclusions::default();
        if dark.is_empty() {
            return ex;
        }
        match route {
            Route::Single(s) => {
                let cache = self.router.shard(s).cache.lock();
                for (_, r) in cache.objects() {
                    if dark.contains(&r.source) {
                        ex.insert(&r.cell.0, r.cell.1);
                    }
                }
            }
            Route::Scatter => {
                for shard in self.router.shards() {
                    let cache = shard.cache.lock();
                    for (_, r) in cache.objects() {
                        if dark.contains(&r.source) {
                            ex.insert(&r.cell.0, shard.global_tid(&r.cell.0, r.cell.1));
                        }
                    }
                }
            }
        }
        ex
    }

    /// The strict-mode refusal when dark sources make a constraint
    /// unachievable: a structured [`TrappError::PartialResult`] naming
    /// which shards hold dark-source cells and which sources are down
    /// (each with a [`TrappError::SourceUnavailable`] cause).
    fn unavailable_error(&self, route: Route, dark: &HashSet<SourceId>) -> TrappError {
        let shard_indexes: Vec<usize> = match route {
            Route::Single(s) => vec![s],
            Route::Scatter => (0..self.router.shard_count()).collect(),
        };
        let mut surviving_shards = Vec::new();
        let mut failed_shards = Vec::new();
        for s in shard_indexes {
            let owns_dark = {
                let cache = self.router.shard(s).cache.lock();
                let any = cache.objects().any(|(_, r)| dark.contains(&r.source));
                any
            };
            if owns_dark {
                failed_shards.push(s);
            } else {
                surviving_shards.push(s);
            }
        }
        let mut sources: Vec<SourceId> = dark.iter().copied().collect();
        sources.sort();
        TrappError::PartialResult(Box::new(PartialFailure {
            surviving_shards,
            failed_shards,
            sources: sources
                .into_iter()
                .map(|source| SourceFailure {
                    source,
                    cause: Box::new(TrappError::SourceUnavailable(source)),
                })
                .collect(),
        }))
    }

    /// The scatter-side plan phase: gather every shard's
    /// [`QueryPartial`] under *all* shard locks (in index order — the only
    /// multi-lock acquisition in the service, so ordered acquisition
    /// cannot deadlock), merge them shape-by-shape with no locks held, and
    /// derive the plan once from the merged input. Holding all locks makes
    /// the merged input a consistent snapshot: an update cannot land on
    /// shard 1 after shard 0 was already gathered, which would merge
    /// bounds from two different logical states into an answer that was
    /// valid at no instant.
    ///
    /// Returns the plan, the gather instant, and the join-round budget.
    fn plan_scatter(
        &self,
        query: &trapp_sql::Query,
        exclusions: &Exclusions,
    ) -> Result<(QueryPlan, f64, usize), TrappError> {
        let mut strategy = trapp_core::SolverStrategy::default();
        let mut heuristic = IterativeHeuristic::BestRatio;
        let mut join_batch = true;
        let mut max_join_rounds = 0usize;
        let mut partials: Vec<QueryPartial> = Vec::with_capacity(self.router.shard_count());
        let mut join_meta: Option<(BoundQuery, JoinSchemas)> = None;
        let now;
        {
            let mut guards: Vec<_> = self
                .router
                .shards()
                .iter()
                .map(|s| s.cache.lock())
                .collect();
            for (shard, cache) in self.router.shards().iter().zip(guards.iter_mut()) {
                cache.materialize()?;
                let config = &cache.session().config;
                strategy = config.strategy;
                heuristic = config.join_heuristic;
                join_batch = config.join_batch;
                max_join_rounds = config.max_refresh_rounds;
                let mut partial = cache.session().partial_query(query)?;
                match &mut partial {
                    QueryPartial::Scalar(p) => {
                        let table = p.table.clone();
                        p.rewrite_tids(|tid| shard.global_tid(&table, tid));
                    }
                    QueryPartial::Grouped(groups) => {
                        for (_, p) in groups.iter_mut() {
                            let table = p.table.clone();
                            p.rewrite_tids(|tid| shard.global_tid(&table, tid));
                        }
                    }
                    QueryPartial::Join(jp) => {
                        let table = jp.left.table.clone();
                        jp.left.rewrite_tids(|tid| shard.global_tid(&table, tid));
                        let table = jp.right.table.clone();
                        jp.right.rewrite_tids(|tid| shard.global_tid(&table, tid));
                    }
                }
                partials.push(partial);
            }
            // Join shape metadata comes from shard 0's catalog — every
            // shard holds every table's schema.
            if matches!(partials.first(), Some(QueryPartial::Join(_))) {
                let catalog = guards[0].session().catalog();
                let bound = bind_query(query, catalog)?;
                let QuerySource::Join { left, right } = &bound.source else {
                    return Err(TrappError::Internal(
                        "join partial from a non-join query".into(),
                    ));
                };
                let schemas = (
                    catalog.table(left)?.schema().clone(),
                    catalog.table(right)?.schema().clone(),
                );
                join_meta = Some((bound, schemas));
            }
            now = self.clock.now();
        }

        // ---- Merge + derive (no locks held) ----
        let shape_err = || TrappError::Internal("shards disagreed on query shape".into());
        let plan = match partials.first().expect("at least one shard") {
            QueryPartial::Scalar(_) => {
                let mut shape: Option<(String, trapp_core::Aggregate, Option<f64>)> = None;
                let mut inputs = Vec::with_capacity(partials.len());
                for partial in partials {
                    let QueryPartial::Scalar(p) = partial else {
                        return Err(shape_err());
                    };
                    shape.get_or_insert((p.table, p.agg, p.within));
                    inputs.push(p.input);
                }
                let (table, agg, within) = shape.expect("at least one shard");
                let merged = trapp_core::merge_partials(inputs)?;
                let unit = plan_unit(
                    agg,
                    within,
                    strategy,
                    &table,
                    Vec::new(),
                    &merged,
                    None,
                    exclusions.for_table(&table),
                )?;
                assemble_units(vec![unit], false)
            }
            QueryPartial::Grouped(_) => {
                let mut shards_groups = Vec::with_capacity(partials.len());
                for partial in partials {
                    let QueryPartial::Grouped(groups) = partial else {
                        return Err(shape_err());
                    };
                    shards_groups.push(groups);
                }
                let merged = merge_grouped_partials(shards_groups)?;
                let mut units = Vec::with_capacity(merged.len());
                for (key, p) in merged {
                    units.push(plan_unit(
                        p.agg,
                        p.within,
                        strategy,
                        &p.table,
                        key,
                        &p.input,
                        None,
                        exclusions.for_table(&p.table),
                    )?);
                }
                assemble_units(units, true)
            }
            QueryPartial::Join(_) => {
                let (bound, (lschema, rschema)) = join_meta.expect("set under the gather locks");
                let mut lefts = Vec::with_capacity(partials.len());
                let mut rights = Vec::with_capacity(partials.len());
                for partial in partials {
                    let QueryPartial::Join(jp) = partial else {
                        return Err(shape_err());
                    };
                    lefts.push(jp.left);
                    rights.push(jp.right);
                }
                let left = merge_table_slices(lschema, lefts)?;
                let right = merge_table_slices(rschema, rights)?;
                plan_join_round(&bound, &left, &right, heuristic, join_batch, exclusions)?
            }
        };
        Ok((plan, now, max_join_rounds))
    }
}

/// The per-side schemas of a gathered join.
type JoinSchemas = (
    std::sync::Arc<trapp_storage::Schema>,
    std::sync::Arc<trapp_storage::Schema>,
);

/// A pending answer; see [`QueryService::submit`].
pub struct QueryTicket {
    rx: Receiver<Result<ServiceReply, TrappError>>,
}

impl QueryTicket {
    /// Blocks until the answer is ready.
    pub fn wait(self) -> Result<ServiceReply, TrappError> {
        self.rx
            .recv()
            .map_err(|_| TrappError::Internal("query service shut down mid-query".into()))?
    }
}

/// A running query service. See the module docs.
pub struct QueryService {
    core: Arc<ServiceCore>,
    jobs: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    /// Live handle over the chaos layer, when the service was built with
    /// [`ServiceBuilder::chaos`].
    chaos: Option<Arc<ChaosControl>>,
}

impl QueryService {
    /// Starts a single-shard service over an already-wired cache +
    /// transport. Most callers want [`ServiceBuilder`] (which also builds
    /// sharded services).
    pub fn start(
        cache: CacheNode,
        transport: impl Transport + 'static,
        clock: SimClock,
        config: ServiceConfig,
    ) -> QueryService {
        let mut cache = cache;
        configure_cache(&mut cache, &config)
            .expect("cost-index registration over the cache's own catalog cannot fail");
        let shard = Shard::new(
            cache,
            Box::new(transport) as Box<dyn Transport>,
            config.coalesce,
            HashMap::new(),
            config.gateway_await_timeout,
            config.retry,
            config.health,
        );
        let router = ShardRouter::new(vec![shard], None, HashSet::new(), HashMap::new());
        QueryService::start_router(router, clock, config, None, None)
    }

    /// Starts workers over an assembled router. `pool` is the shared
    /// resizable fetch pool plus its build-time base size, when the
    /// service was built over a completion transport — the admission
    /// controller resizes it live under queue pressure.
    fn start_router(
        router: ShardRouter,
        clock: SimClock,
        config: ServiceConfig,
        chaos: Option<Arc<ChaosControl>>,
        pool: Option<(FetchPool, usize)>,
    ) -> QueryService {
        let admission = Arc::new(AdmissionController::new(config.admission));
        if let Some((pool, base)) = pool {
            admission.attach_pool(pool, base);
        }
        let core = Arc::new(ServiceCore {
            router,
            clock,
            batch_refreshes: config.batch_refreshes,
            degradation: config.degradation,
            counters: Mutex::new(ServiceStats::default()),
            admission,
            fetch_rate: Mutex::new(0.0),
        });
        let (jobs_tx, jobs_rx) = unbounded::<Job>();
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let core = core.clone();
                let rx = jobs_rx.clone();
                std::thread::Builder::new()
                    .name(format!("trapp-query-worker-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            core.admission.dequeued();
                            let _ =
                                job.reply
                                    .send(core.run_query(&job.sql, job.enqueued, job.widen));
                        }
                    })
                    .expect("spawn query worker")
            })
            .collect();
        QueryService {
            core,
            jobs: Some(jobs_tx),
            workers,
            chaos,
        }
    }

    /// The chaos-layer control handle, when this service was built with
    /// [`ServiceBuilder::chaos`] — scripts outages (`force_down` /
    /// `restore`) and reads injection counters mid-run.
    pub fn chaos_control(&self) -> Option<&Arc<ChaosControl>> {
        self.chaos.as_ref()
    }

    /// Enqueues a query; the returned ticket resolves to the answer.
    ///
    /// This is also the admission-control choke point: above the
    /// configured reject watermark the ticket resolves immediately to a
    /// typed [`TrappError::Overloaded`] without the query ever touching
    /// the worker queue, and between the widen and reject watermarks the
    /// query runs with a relaxed precision constraint (the reply's
    /// [`ServiceReply::degraded`] names the original ask).
    pub fn submit(&self, sql: impl Into<String>) -> QueryTicket {
        let (reply, rx) = unbounded();
        if let Some(jobs) = &self.jobs {
            match self.core.admission.admit() {
                Err(e) => {
                    self.core.counters.lock().errors += 1;
                    let _ = reply.send(Err(e));
                }
                Ok(verdict) => {
                    let job = Job {
                        sql: sql.into(),
                        enqueued: Instant::now(),
                        widen: verdict == Admission::Widened,
                        reply,
                    };
                    // A send only fails after shutdown; the ticket then
                    // reports it.
                    let _ = jobs.send(job);
                }
            }
        }
        QueryTicket { rx }
    }

    /// Convenience: submit and wait.
    pub fn query(&self, sql: impl Into<String>) -> Result<ServiceReply, TrappError> {
        self.submit(sql).wait()
    }

    /// Applies an update to a replicated object's master value, delivering
    /// any value-initiated refreshes to the owning shard's cache. Returns
    /// how many were delivered.
    pub fn apply_update(&self, object: ObjectId, value: f64) -> Result<usize, TrappError> {
        self.apply_update_batch(&[(object, value)])
    }

    /// Applies a whole batch of master-value updates, paying one
    /// completion per `(shard, source)` batch instead of one blocking
    /// round-trip per write: updates are grouped by the owning shard and
    /// source (submission order preserved within each source), every
    /// batch is submitted through the gateways' nonblocking
    /// [`Transport::submit_update_batch`] before any is waited on, and
    /// the triggered value-initiated refreshes install on their owning
    /// shards. Returns how many refreshes were delivered; on a failed
    /// batch the surviving batches' refreshes are still installed before
    /// the first error is reported.
    pub fn apply_update_batch(&self, updates: &[(ObjectId, f64)]) -> Result<usize, TrappError> {
        let now = self.core.clock.now();
        // Group by owning shard first, then resolve each shard's sources
        // under one short lock per shard.
        let mut shard_updates: BTreeMap<usize, Vec<(ObjectId, f64)>> = BTreeMap::new();
        for &(object, value) in updates {
            let idx =
                self.core.router.object_shard(object).ok_or_else(|| {
                    TrappError::RefreshFailed(format!("{object} is not replicated"))
                })?;
            shard_updates.entry(idx).or_default().push((object, value));
        }
        let mut per_shard: BTreeMap<usize, BTreeMap<SourceId, Vec<(ObjectId, f64)>>> =
            BTreeMap::new();
        for (idx, batch) in shard_updates {
            let cache = self.core.router.shard(idx).cache.lock();
            let per_source = per_shard.entry(idx).or_default();
            for (object, value) in batch {
                let source = cache.route(object).map(|r| r.source).ok_or_else(|| {
                    TrappError::RefreshFailed(format!("{object} is not replicated"))
                })?;
                per_source.entry(source).or_default().push((object, value));
            }
        }
        // Submit every per-source batch before waiting on any (the
        // gateways invalidate their memoized entries at submit time).
        let pending: Vec<(usize, _)> = per_shard
            .into_iter()
            .flat_map(|(idx, per_source)| {
                let shard = self.core.router.shard(idx);
                per_source
                    .into_iter()
                    .map(move |(source, batch)| {
                        (idx, shard.gateway.submit_update_batch(source, batch, now))
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        // Drain every completion even after a failure: the sources behind
        // the other batches already applied their writes and narrowed
        // their tracked bounds — their refreshes must install or cache
        // and Refresh Monitor diverge.
        let mut delivered = 0usize;
        let mut failure: Option<TrappError> = None;
        for (idx, completion) in pending {
            match completion.wait() {
                Ok(refreshes) => {
                    let mut cache = self.core.router.shard(idx).cache.lock();
                    for (cache_id, refresh) in refreshes {
                        debug_assert_eq!(cache_id, cache.id());
                        match cache.install_refresh(refresh) {
                            Ok(()) => delivered += 1,
                            Err(e) => {
                                failure.get_or_insert(e);
                            }
                        }
                    }
                }
                Err(e) => {
                    failure.get_or_insert(e);
                }
            }
        }
        match failure {
            Some(e) => Err(e),
            None => Ok(delivered),
        }
    }

    /// Advances the shared clock (bounds widen as time passes).
    pub fn advance_clock(&self, dt: f64) {
        self.core.clock.advance(dt);
    }

    /// The shared clock.
    pub fn clock(&self) -> &SimClock {
        &self.core.clock
    }

    /// Number of cache shards.
    pub fn shard_count(&self) -> usize {
        self.core.router.shard_count()
    }

    /// Runs `f` against shard 0's cache (setup, inspection); serialized
    /// with query execution on that shard. Sharded services usually want
    /// [`QueryService::with_shard_cache`].
    pub fn with_cache<R>(&self, f: impl FnOnce(&mut CacheNode) -> R) -> R {
        self.with_shard_cache(0, f)
    }

    /// Runs `f` against one shard's cache; serialized with query execution
    /// on that shard.
    pub fn with_shard_cache<R>(&self, shard: usize, f: impl FnOnce(&mut CacheNode) -> R) -> R {
        f(&mut self.core.router.shard(shard).cache.lock())
    }

    /// The union of every shard's currently-dark (breaker-open) sources.
    /// Empty on a healthy service; polled by benches and tests to watch
    /// breakers open and recover.
    pub fn dark_sources(&self) -> HashSet<SourceId> {
        let mut dark = HashSet::new();
        for shard in self.core.router.shards() {
            dark.extend(shard.health.dark_sources());
        }
        dark
    }

    /// A consistent snapshot of the aggregate counters.
    pub fn stats(&self) -> ServiceStats {
        let mut s = *self.core.counters.lock();
        for shard in self.core.router.shards() {
            s.refreshes_coalesced += shard.gateway.refreshes_coalesced();
            s.refreshes_forwarded += shard.gateway.refreshes_forwarded();
        }
        s.queue_depth = self.core.admission.depth();
        s.fetch_pool_threads = self.core.admission.pool_threads().unwrap_or(0) as u64;
        s.admission_widened = self.core.admission.widened();
        s.admission_rejected = self.core.admission.rejected();
        s
    }

    /// Stops accepting work and joins every worker.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        self.jobs = None; // closes the queue; workers drain and exit
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for QueryService {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// The adaptive default size of the shared fetch pool (the
/// [`ServiceBuilder::build_completion`] `None` case): enough demux
/// threads to keep every shard's fetch slice moving — up to two per
/// shard, matching the plan/install double pass — but never more than
/// the hardware offers, and at least two so one slow source cannot
/// stall an unrelated completion.
pub fn default_fetch_pool_size(shards: usize) -> usize {
    let hardware = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    (2 * shards.max(1)).min(hardware).max(2)
}

/// Applies one `ServiceConfig` to a cache: refresh batching, the view
/// planner toggle, and — when views are on — the refresh-cost index on
/// every cached table (it keys the §6.3 COUNT probe and never churns on
/// bound re-materialization, since costs are write-once per tuple). The
/// §5.1/§5.2 endpoint/width indexes are deliberately *not* registered:
/// every clock advance rewrites every bound cell, so their maintenance
/// (six B-tree moves per cell per advance) costs more than the
/// unfiltered queries they accelerate — embedders with slow-moving
/// bounds can opt in via `Table::create_default_indexes`. With
/// `cache_views = false` nothing is registered at all: the complete
/// scan-era baseline (no views, no indexes, no probes). Shared by
/// [`QueryService::start`] and the builder so both construction paths
/// configure identically.
fn configure_cache(cache: &mut CacheNode, config: &ServiceConfig) -> Result<(), TrappError> {
    cache.set_batch_refreshes(config.batch_refreshes);
    cache.session_mut().config.cache_views = config.cache_views;
    cache.session_mut().config.join_batch = config.batch_join_rounds;
    if config.cache_views {
        let names: Vec<String> = cache
            .session()
            .catalog()
            .table_names()
            .map(str::to_owned)
            .collect();
        for name in names {
            cache
                .session_mut()
                .catalog_mut()
                .table_mut(&name)?
                .create_index(trapp_storage::IndexKey::Cost)?;
        }
    }
    Ok(())
}

/// Everything `wire` produces for one shard, before the transport choice.
struct WiredShard {
    cache: CacheNode,
    sources: Vec<Source>,
    to_global: TidMap<TupleId>,
}

/// Declarative service setup: tables, then rows bound to sources, then
/// [`build_direct`](ServiceBuilder::build_direct) or
/// [`build_channel`](ServiceBuilder::build_channel).
///
/// With `config.shards = 1` (the default) this mirrors
/// [`trapp_system::Simulation`]'s wiring exactly (same object-id
/// assignment order, same subscription flow, same cost model), so a
/// service and a simulation built from the same specs hold identical
/// initial state — the property the correctness tests lean on.
///
/// With more shards, rows are placed by hashing the
/// [`partition_by`](ServiceBuilder::partition_by) column's exact integer
/// value ([`trapp_types::shard_of`]); rows without such a cell spread by
/// global tuple id. Global tuple ids and object ids are assigned in the
/// same order as the single-shard build, so the *union* of the shards is
/// cell-for-cell the single-shard service — which is what makes sharded
/// answers comparable (indeed bit-equal) across shard counts.
pub struct ServiceBuilder {
    shape: BoundShape,
    initial_width: f64,
    cost_model: CostModel,
    config: ServiceConfig,
    partition_by: Option<String>,
    tables: Vec<Table>,
    rows: Vec<(String, SourceId, Vec<BoundedValue>)>,
    chaos: Option<ChaosConfig>,
}

impl Default for ServiceBuilder {
    fn default() -> ServiceBuilder {
        ServiceBuilder {
            shape: BoundShape::Sqrt,
            initial_width: 1.0,
            cost_model: CostModel::unit(),
            config: ServiceConfig::default(),
            partition_by: None,
            tables: Vec::new(),
            rows: Vec::new(),
            chaos: None,
        }
    }
}

impl ServiceBuilder {
    /// Starts a builder with √t bounds, width 1, unit costs.
    pub fn new() -> ServiceBuilder {
        ServiceBuilder::default()
    }

    /// Sets the bound shape issued by all sources.
    pub fn shape(mut self, shape: BoundShape) -> Self {
        self.shape = shape;
        self
    }

    /// Sets the initial adaptive width parameter.
    pub fn initial_width(mut self, w: f64) -> Self {
        self.initial_width = w;
        self
    }

    /// Sets the refresh cost model.
    pub fn cost_model(mut self, m: CostModel) -> Self {
        self.cost_model = m;
        self
    }

    /// Sets the service configuration.
    pub fn config(mut self, config: ServiceConfig) -> Self {
        self.config = config;
        self
    }

    /// Wraps every shard's transport in a deterministic fault-injecting
    /// [`ChaosTransport`] with this configuration. All shards share one
    /// [`ChaosControl`] (a single global operation counter, so outage
    /// windows script against service-wide operation order), reachable
    /// after build via [`QueryService::chaos_control`].
    pub fn chaos(mut self, cfg: ChaosConfig) -> Self {
        self.chaos = Some(cfg);
        self
    }

    /// Names the partition column: rows are placed on shards by the hash
    /// of this column's exact integer value, and queries pinning it to one
    /// group route to a single shard. Without it, a multi-shard service
    /// spreads rows by tuple id and answers every query by scatter-gather.
    pub fn partition_by(mut self, column: impl Into<String>) -> Self {
        self.partition_by = Some(column.into());
        self
    }

    /// Adds a cached table (rows via [`ServiceBuilder::row`]).
    pub fn table(mut self, table: Table) -> Self {
        self.tables.push(table);
        self
    }

    /// Adds a row whose bounded cells hold initial master values owned by
    /// `source` (exact values for exact columns, exact floats as initial
    /// master values for bounded columns).
    pub fn row(
        mut self,
        table: impl Into<String>,
        source: SourceId,
        cells: Vec<BoundedValue>,
    ) -> Self {
        self.rows.push((table.into(), source, cells));
        self
    }

    /// Builds over the synchronous [`DirectTransport`] (one per shard).
    pub fn build_direct(self) -> Result<QueryService, TrappError> {
        self.build_with(
            |sources| {
                let mut transport = DirectTransport::new();
                for source in sources {
                    transport.add_source(source);
                }
                Box::new(transport) as Box<dyn Transport>
            },
            None,
        )
    }

    /// Builds over the threaded [`ChannelTransport`] with the given
    /// simulated one-way latency per round-trip (one transport — and one
    /// set of source actor threads — per shard).
    pub fn build_channel(self, latency: Duration) -> Result<QueryService, TrappError> {
        self.build_with(
            move |sources| {
                let mut transport = ChannelTransport::new(latency);
                for source in sources {
                    transport.add_source(source);
                }
                Box::new(transport) as Box<dyn Transport>
            },
            None,
        )
    }

    /// Builds over the completion-based [`CompletionTransport`]: one
    /// **service-wide** [`FetchPool`] of `pool_threads` demux threads
    /// multiplexes every shard's sources, so total transport threads are
    /// `O(pool_threads)` — independent of the source × shard count —
    /// where [`build_channel`](ServiceBuilder::build_channel) burns one OS
    /// thread per source per shard. `latency` is the simulated one-way
    /// wire time per refresh round-trip (held on a timer, not a sleeping
    /// thread).
    ///
    /// `pool_threads` accepts a plain count (the explicit override) or
    /// `None`, which sizes the pool adaptively from the machine and the
    /// topology — see [`default_fetch_pool_size`].
    pub fn build_completion(
        self,
        latency: Duration,
        pool_threads: impl Into<Option<usize>>,
    ) -> Result<QueryService, TrappError> {
        // Sized here, from the *final* config — `build_*` is always the
        // last builder call, so `self.config.shards` is what the service
        // will actually run with.
        let pool_threads = pool_threads
            .into()
            .unwrap_or_else(|| default_fetch_pool_size(self.config.shards));
        let pool = FetchPool::new(pool_threads);
        let pool_handle = pool.clone();
        self.build_with(
            move |sources| {
                let mut transport = CompletionTransport::new(latency, pool.clone());
                for source in sources {
                    transport.add_source(source);
                }
                Box::new(transport) as Box<dyn Transport>
            },
            Some((pool_handle, pool_threads)),
        )
    }

    /// Shared build: wire the shards, wrap each one's sources in a
    /// transport, assemble the router, start the workers. `pool` hands
    /// the resizable fetch pool (plus its base size) to the admission
    /// controller for live burst resizing.
    fn build_with(
        self,
        mut make_transport: impl FnMut(Vec<Source>) -> Box<dyn Transport>,
        pool: Option<(FetchPool, usize)>,
    ) -> Result<QueryService, TrappError> {
        let config = self.config;
        let partition_column = self.partition_by.clone();
        let chaos_cfg = self.chaos.clone();
        // One control across all shards: a single global op counter, so
        // scripted outage windows span the whole service's operation
        // order rather than restarting per shard.
        let chaos_control = chaos_cfg.as_ref().map(|_| Arc::new(ChaosControl::new()));
        let (clock, wired, group_placed, from_global) = self.wire()?;
        let mut shards = Vec::with_capacity(wired.len());
        for w in wired {
            let mut cache = w.cache;
            configure_cache(&mut cache, &config)?;
            let mut transport = make_transport(w.sources);
            if let (Some(cfg), Some(control)) = (&chaos_cfg, &chaos_control) {
                transport = Box::new(ChaosTransport::new(transport, cfg.clone(), control.clone()));
            }
            shards.push(Shard::new(
                cache,
                transport,
                config.coalesce,
                w.to_global,
                config.gateway_await_timeout,
                config.retry,
                config.health,
            ));
        }
        let router = ShardRouter::new(shards, partition_column, group_placed, from_global);
        Ok(QueryService::start_router(
            router,
            clock,
            config,
            chaos_control,
            pool,
        ))
    }

    /// The shard a row lands on: hash of the partition cell's exact
    /// integer value when available, hash of the global tuple id
    /// otherwise. Returns the shard plus whether the row was group-placed.
    fn place(
        partition_by: Option<&str>,
        table: &Table,
        cells: &[BoundedValue],
        global_tid: TupleId,
        shards: usize,
    ) -> (usize, bool) {
        if let Some(col) = partition_by {
            if let Ok(idx) = table.schema().column_index(col) {
                if let Some(BoundedValue::Exact(Value::Int(g))) = cells.get(idx) {
                    return (shard_of(*g as u64, shards), true);
                }
            }
        }
        (shard_of(global_tid.raw(), shards), false)
    }

    /// Shared wiring: registers objects, subscribes each shard's cache,
    /// prices tuples — transport-agnostic because subscription happens
    /// before the sources move behind a transport.
    #[allow(clippy::type_complexity)]
    fn wire(
        self,
    ) -> Result<
        (
            SimClock,
            Vec<WiredShard>,
            HashSet<String>,
            TidMap<(usize, TupleId)>,
        ),
        TrappError,
    > {
        self.cost_model.validate()?;
        let shards = self.config.shards.max(1);
        let clock = SimClock::new();
        let now = clock.now();

        let mut wired: Vec<WiredShard> = (0..shards)
            .map(|i| {
                Ok(WiredShard {
                    cache: {
                        let mut cache = CacheNode::new(CacheId::new(i as u64 + 1), clock.clone());
                        for table in &self.tables {
                            cache.add_table(table.clone())?;
                        }
                        cache
                    },
                    sources: Vec::new(),
                    to_global: HashMap::new(),
                })
            })
            .collect::<Result<_, TrappError>>()?;

        // Tables start fully group-placed; any row that falls back to
        // tuple-id placement revokes single-shard routing for its table.
        let mut group_placed: HashSet<String> =
            self.tables.iter().map(|t| t.name().to_owned()).collect();
        let mut from_global: TidMap<(usize, TupleId)> = HashMap::new();

        // Global id assignment matches the single-shard build exactly:
        // tuple ids count up per table in row order, object ids count up
        // across all rows in row order.
        let mut next_global: HashMap<String, u64> = HashMap::new();
        let mut next_object = 1u64;

        for (table_name, source_id, cells) in self.rows {
            let counter = next_global.entry(table_name.clone()).or_insert(1);
            let global_tid = TupleId::new(*counter);
            *counter += 1;

            let template = self
                .tables
                .iter()
                .find(|t| t.name() == table_name)
                .ok_or_else(|| TrappError::UnknownTable(table_name.clone()))?;
            let (shard_idx, by_group) = Self::place(
                self.partition_by.as_deref(),
                template,
                &cells,
                global_tid,
                shards,
            );
            if !by_group {
                group_placed.remove(&table_name);
            }
            let shard = &mut wired[shard_idx];

            if !shard.sources.iter().any(|s| s.id() == source_id) {
                shard.sources.push(Source::new(source_id, self.shape));
            }
            let source = shard
                .sources
                .iter_mut()
                .find(|s| s.id() == source_id)
                .expect("just ensured");

            let bounded_cols = shard
                .cache
                .session()
                .catalog()
                .table(&table_name)?
                .schema()
                .bounded_columns();
            let tid: TupleId = shard
                .cache
                .session_mut()
                .catalog_mut()
                .table_mut(&table_name)?
                .insert(cells.clone())?;
            shard
                .to_global
                .entry(table_name.clone())
                .or_default()
                .insert(tid, global_tid);
            from_global
                .entry(table_name.clone())
                .or_default()
                .insert(global_tid, (shard_idx, tid));

            let mut tuple_cost = 0.0;
            for &col in &bounded_cols {
                let initial = cells
                    .get(col)
                    .ok_or_else(|| TrappError::SchemaViolation("row arity".into()))?
                    .as_interval()?
                    .midpoint();
                let object = ObjectId::new(next_object);
                next_object += 1;
                source.register_object(object, initial)?;
                shard
                    .cache
                    .bind_object(object, source_id, table_name.as_str(), tid, col)?;
                let refresh =
                    source.subscribe(shard.cache.id(), object, self.initial_width, now)?;
                shard.cache.install_refresh(refresh)?;
                tuple_cost += self.cost_model.cost(source_id, object);
            }
            shard
                .cache
                .session_mut()
                .catalog_mut()
                .table_mut(&table_name)?
                .set_cost(tid, tuple_cost.max(f64::MIN_POSITIVE))?;
        }
        Ok((clock, wired, group_placed, from_global))
    }
}
