//! The shard router: partition metadata and per-shard state for a
//! multi-cache query service.
//!
//! A sharded [`QueryService`](crate::QueryService) owns N [`Shard`]s, each
//! a fully independent TRAPP stack — its own [`CacheNode`], its own
//! single-flight [`RefreshGateway`], its own transport with its own source
//! actors — so shards never contend on locks or in-flight tables. Rows are
//! placed at build time by hashing the *partition column* (an exact
//! integer group key) with [`trapp_types::shard_of`]; rows of tables
//! without the column (or with non-integer keys) fall back to hashing
//! their global tuple id, which spreads them evenly but makes their
//! queries scatter-gather.
//!
//! The router answers three questions:
//!
//! * [`route`](ShardRouter::route) — which shard(s) must a parsed query
//!   touch? A query whose predicate pins the partition column to one group
//!   (`… WHERE grp = 7 AND …`) of a fully group-placed table runs on that
//!   group's shard alone; everything else scatters.
//! * `locate` — where does a global tuple id live? (Used to split a
//!   globally planned CHOOSE_REFRESH across shards.)
//! * `object_shard` — which shard's cache is subscribed to a replicated
//!   object? (Used to deliver updates.)
//!
//! Tuple ids are *global* at the service boundary and *local* inside each
//! shard; the maps here translate both directions. Global ids equal the
//! ids a single cache ingesting the same rows would have assigned, which
//! is what makes scatter-gathered answers bit-equivalent to single-cache
//! answers (see [`trapp_core::merge`]).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use trapp_expr::{BinaryOp, ColumnRef, Expr};
use trapp_sql::Query;
use trapp_system::{CacheNode, Transport};
use trapp_types::{shard_of, CacheId, ObjectId, TrappError, TupleId, Value};

use crate::gateway::{RefreshGateway, RetryPolicy};
use crate::health::{HealthConfig, HealthTracker};

/// A tuple-id translation map, bucketed per table so lookups hash a
/// `&str` instead of allocating a `(String, TupleId)` key per probe.
pub(crate) type TidMap<V> = HashMap<String, HashMap<TupleId, V>>;

/// One shard of the service: an independent cache + gateway + transport
/// stack plus its local→global tuple-id map.
pub struct Shard {
    pub(crate) cache: Mutex<CacheNode>,
    pub(crate) cache_id: CacheId,
    pub(crate) gateway: RefreshGateway<Box<dyn Transport>>,
    /// This shard's per-source circuit breakers (shared with the gateway,
    /// which records round-trip outcomes into it).
    pub(crate) health: Arc<HealthTracker>,
    /// table → (local tid → global tid). Empty = identity (the
    /// single-shard compatibility path).
    to_global: TidMap<TupleId>,
}

impl Shard {
    /// Wraps a wired cache and its transport into a shard.
    pub(crate) fn new(
        cache: CacheNode,
        transport: Box<dyn Transport>,
        coalesce: bool,
        to_global: TidMap<TupleId>,
        await_timeout: Duration,
        retry: RetryPolicy,
        health_cfg: HealthConfig,
    ) -> Shard {
        let health = Arc::new(HealthTracker::new(health_cfg));
        Shard {
            cache_id: cache.id(),
            cache: Mutex::new(cache),
            gateway: RefreshGateway::with_policy(
                transport,
                coalesce,
                await_timeout,
                retry,
                health.clone(),
            ),
            health,
            to_global,
        }
    }

    /// Translates a shard-local tuple id to the global id space.
    pub(crate) fn global_tid(&self, table: &str, local: TupleId) -> TupleId {
        self.to_global
            .get(table)
            .and_then(|m| m.get(&local))
            .copied()
            .unwrap_or(local)
    }
}

/// Where a query must run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Route {
    /// Every row the query can touch lives on this one shard.
    Single(usize),
    /// The query's group set (potentially) spans shards: scatter the
    /// partial-input request to every shard and gather-merge.
    Scatter,
}

/// Partition metadata plus the shards themselves. See the module docs.
pub struct ShardRouter {
    shards: Vec<Shard>,
    partition_column: Option<String>,
    /// Tables whose every row was placed by the partition column — only
    /// their group-pinned queries may be routed to a single shard.
    group_placed: HashSet<String>,
    /// table → (global tid → (shard, local tid)). Empty = identity on
    /// shard 0.
    from_global: TidMap<(usize, TupleId)>,
    /// Replicated object → owning shard.
    object_shard: HashMap<ObjectId, usize>,
}

impl ShardRouter {
    /// Assembles a router over wired shards. The object→shard index is
    /// derived from each cache's bound objects.
    pub(crate) fn new(
        shards: Vec<Shard>,
        partition_column: Option<String>,
        group_placed: HashSet<String>,
        from_global: TidMap<(usize, TupleId)>,
    ) -> ShardRouter {
        assert!(!shards.is_empty(), "a service needs at least one shard");
        let mut object_shard = HashMap::new();
        for (idx, shard) in shards.iter().enumerate() {
            for (object, _) in shard.cache.lock().objects() {
                object_shard.insert(object, idx);
            }
        }
        ShardRouter {
            shards,
            partition_column,
            group_placed,
            from_global,
            object_shard,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in index order.
    pub(crate) fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// One shard by index.
    pub(crate) fn shard(&self, idx: usize) -> &Shard {
        &self.shards[idx]
    }

    /// Decides where `query` runs: a single shard when its predicate pins
    /// the partition column to one group of a fully group-placed table,
    /// scatter-gather otherwise. One-shard services always route single.
    pub fn route(&self, query: &Query) -> Route {
        if self.shards.len() == 1 {
            return Route::Single(0);
        }
        let Some(col) = &self.partition_column else {
            return Route::Scatter;
        };
        let [table] = query.tables.as_slice() else {
            return Route::Scatter;
        };
        if !self.group_placed.contains(table) {
            return Route::Scatter;
        }
        match query
            .predicate
            .as_ref()
            .and_then(|p| pinned_group(p, col, table))
        {
            Some(group) => Route::Single(shard_of(group as u64, self.shards.len())),
            None => Route::Scatter,
        }
    }

    /// Resolves a global tuple id to its shard and local id.
    pub(crate) fn locate(
        &self,
        table: &str,
        global: TupleId,
    ) -> Result<(usize, TupleId), TrappError> {
        if self.from_global.is_empty() {
            return Ok((0, global));
        }
        self.from_global
            .get(table)
            .and_then(|m| m.get(&global))
            .copied()
            .ok_or_else(|| TrappError::Internal(format!("no shard holds {table} tuple {global}")))
    }

    /// The shard whose cache is subscribed to `object`, if any.
    pub(crate) fn object_shard(&self, object: ObjectId) -> Option<usize> {
        self.object_shard.get(&object).copied()
    }
}

/// Extracts the group an AND-tree of conjuncts pins the partition column
/// to: a conjunct of the form `col = <int>` (either operand order), with
/// `col` bare or qualified by the queried table. OR branches and other
/// comparisons never pin — they may admit several groups.
fn pinned_group(pred: &Expr<ColumnRef>, col: &str, table: &str) -> Option<i64> {
    match pred {
        Expr::Binary(BinaryOp::And, a, b) => {
            pinned_group(a, col, table).or_else(|| pinned_group(b, col, table))
        }
        Expr::Binary(BinaryOp::Eq, a, b) => {
            eq_group(a, b, col, table).or_else(|| eq_group(b, a, col, table))
        }
        _ => None,
    }
}

/// `lhs = rhs` where `lhs` is the partition column and `rhs` an integer
/// literal (the SQL lexer produces floats, so integral floats count).
fn eq_group(lhs: &Expr<ColumnRef>, rhs: &Expr<ColumnRef>, col: &str, table: &str) -> Option<i64> {
    let Expr::Column(c) = lhs else {
        return None;
    };
    let g = match rhs {
        Expr::Literal(Value::Int(g)) => *g,
        Expr::Literal(Value::Float(g)) if g.fract() == 0.0 && g.abs() <= i64::MAX as f64 => {
            *g as i64
        }
        _ => return None,
    };
    let qualified_ok = c.table.as_deref().is_none_or(|t| t == table);
    (c.column == col && qualified_ok).then_some(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pred(sql: &str) -> Expr<ColumnRef> {
        trapp_sql::parse_query(&format!("SELECT SUM(load) FROM metrics WHERE {sql}"))
            .unwrap()
            .predicate
            .unwrap()
    }

    #[test]
    fn pins_group_through_and_trees() {
        assert_eq!(pinned_group(&pred("grp = 3"), "grp", "metrics"), Some(3));
        assert_eq!(
            pinned_group(&pred("load > 5 AND grp = 7"), "grp", "metrics"),
            Some(7)
        );
        assert_eq!(
            pinned_group(&pred("3 = grp AND load > 5"), "grp", "metrics"),
            Some(3)
        );
        assert_eq!(
            pinned_group(&pred("metrics.grp = 2"), "grp", "metrics"),
            Some(2)
        );
    }

    #[test]
    fn refuses_to_pin_when_groups_may_vary() {
        for p in [
            "grp > 3",            // range: many groups
            "grp = 1 OR grp = 2", // disjunction
            "other.grp = 1",      // different table
            "load = 3",           // different column
            "NOT grp = 3",        // negation
        ] {
            assert_eq!(pinned_group(&pred(p), "grp", "metrics"), None, "{p}");
        }
    }
}
