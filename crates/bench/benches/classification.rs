//! Criterion micro-benchmarks for T+/T?/T− classification (§6, Appendix D)
//! and the end-to-end query execution path.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trapp_core::{QuerySession, SolverStrategy, TableOracle};
use trapp_expr::{classify_table, BinaryOp, ColumnRef, Expr};
use trapp_types::Value;
use trapp_workload::netmon::{generate, NetworkConfig};

fn bench_classification(c: &mut Criterion) {
    let mut group = c.benchmark_group("classify");
    for links in [200usize, 2000] {
        let network = generate(&NetworkConfig {
            nodes: 50,
            extra_links: links.saturating_sub(49),
            ..NetworkConfig::default()
        });
        let (cache, _) = network.build_tables();
        let schema = cache.schema().clone();
        let simple = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("traffic")),
            Expr::Literal(Value::Float(250.0)),
        )
        .bind(&schema)
        .expect("pred");
        let conjunction = Expr::and(
            Expr::binary(
                BinaryOp::Gt,
                Expr::Column(ColumnRef::bare("bandwidth")),
                Expr::Literal(Value::Float(300.0)),
            ),
            Expr::binary(
                BinaryOp::Lt,
                Expr::Column(ColumnRef::bare("latency")),
                Expr::Literal(Value::Float(20.0)),
            ),
        )
        .bind(&schema)
        .expect("pred");

        group.bench_with_input(
            BenchmarkId::new("simple_cmp", cache.len()),
            &cache,
            |b, cache| {
                b.iter(|| black_box(classify_table(cache, Some(&simple)).expect("classify")))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("conjunction", cache.len()),
            &cache,
            |b, cache| {
                b.iter(|| black_box(classify_table(cache, Some(&conjunction)).expect("classify")))
            },
        );
    }
    group.finish();
}

/// End-to-end: parse → bind → classify → answer → CHOOSE_REFRESH →
/// refresh → recompute, on a fresh session each iteration.
fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end_query");
    group.sample_size(30);
    let network = generate(&NetworkConfig::default());
    for (name, sql) in [
        (
            "min_pred",
            "SELECT MIN(traffic) WITHIN 20 FROM links WHERE bandwidth > 300",
        ),
        ("sum_within", "SELECT SUM(latency) WITHIN 50 FROM links"),
        (
            "avg_pred",
            "SELECT AVG(latency) WITHIN 3 FROM links WHERE traffic > 250",
        ),
    ] {
        group.bench_function(name, |b| {
            b.iter_with_setup(
                || {
                    let (cache, master) = network.build_tables();
                    let mut s = QuerySession::new(cache);
                    s.config.strategy = SolverStrategy::Fptas(0.1);
                    (s, TableOracle::from_table(master))
                },
                |(mut s, mut o)| black_box(s.execute_sql(sql, &mut o).expect("query")),
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_classification, bench_end_to_end);
criterion_main!(benches);
