//! Criterion micro-benchmarks for the knapsack solver portfolio (the inner
//! loop of CHOOSE_REFRESH for SUM/AVG; Figure 5's time axis).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trapp_knapsack::{Instance, Item};

fn random_instance(n: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let items: Vec<Item> = (0..n)
        .map(|_| {
            Item::new(rng.gen_range(1..=10) as f64, rng.gen_range(0.1..5.0)).expect("valid item")
        })
        .collect();
    let total: f64 = items.iter().map(|i| i.weight).sum();
    Instance::new(items, total * 0.3).expect("valid instance")
}

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("knapsack_solvers");
    for n in [30usize, 90, 270] {
        let inst = random_instance(n, 42);
        group.bench_with_input(BenchmarkId::new("exact_bb", n), &inst, |b, inst| {
            b.iter(|| black_box(inst.solve_exact()))
        });
        group.bench_with_input(BenchmarkId::new("fptas_0.1", n), &inst, |b, inst| {
            b.iter(|| black_box(inst.solve_fptas(0.1).expect("valid eps")))
        });
        group.bench_with_input(BenchmarkId::new("fptas_0.02", n), &inst, |b, inst| {
            b.iter(|| black_box(inst.solve_fptas(0.02).expect("valid eps")))
        });
        group.bench_with_input(BenchmarkId::new("greedy_density", n), &inst, |b, inst| {
            b.iter(|| black_box(inst.solve_greedy_density()))
        });
        group.bench_with_input(BenchmarkId::new("greedy_by_weight", n), &inst, |b, inst| {
            b.iter(|| black_box(inst.solve_greedy_by_weight()))
        });
    }
    group.finish();
}

/// Figure 5's time axis as a micro-benchmark: the 90-item paper-scale
/// instance across the ε sweep.
fn bench_fig5_epsilons(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig5_epsilon");
    let inst = random_instance(90, 42);
    for eps in [0.1, 0.06, 0.04, 0.02, 0.01] {
        group.bench_with_input(BenchmarkId::from_parameter(eps), &eps, |b, &eps| {
            b.iter(|| black_box(inst.solve_fptas(eps).expect("valid eps")))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers, bench_fig5_epsilons);
criterion_main!(benches);
