//! Criterion micro-benchmarks for the CHOOSE_REFRESH planners across
//! aggregates and table sizes.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trapp_core::agg::{AggInput, Aggregate};
use trapp_core::refresh::{choose_refresh, SolverStrategy};
use trapp_expr::{BinaryOp, ColumnRef, Expr};
use trapp_types::Value;
use trapp_workload::netmon::{generate, NetworkConfig};

fn inputs(nodes: usize, extra: usize) -> (AggInput, AggInput) {
    let network = generate(&NetworkConfig {
        nodes,
        extra_links: extra,
        ..NetworkConfig::default()
    });
    let (cache, _) = network.build_tables();
    let schema = cache.schema().clone();
    let latency = Expr::Column(ColumnRef::bare("latency"))
        .bind(&schema)
        .expect("col");
    let pred = Expr::binary(
        BinaryOp::Gt,
        Expr::Column(ColumnRef::bare("traffic")),
        Expr::Literal(Value::Float(250.0)),
    )
    .bind(&schema)
    .expect("pred");
    let plain = AggInput::build(&cache, None, Some(&latency)).expect("input");
    let selected = AggInput::build(&cache, Some(&pred), Some(&latency)).expect("input");
    (plain, selected)
}

fn bench_choose_refresh(c: &mut Criterion) {
    let mut group = c.benchmark_group("choose_refresh");
    for links in [100usize, 400, 1600] {
        let (plain, selected) = inputs(50, links.saturating_sub(49));
        let r = 50.0;
        for (name, agg, input) in [
            ("min", Aggregate::Min, &plain),
            ("sum", Aggregate::Sum, &plain),
            ("avg", Aggregate::Avg, &plain),
            ("count_pred", Aggregate::Count, &selected),
            ("sum_pred", Aggregate::Sum, &selected),
            ("avg_pred", Aggregate::Avg, &selected),
        ] {
            group.bench_with_input(
                BenchmarkId::new(name, input.items.len()),
                input,
                |b, input| {
                    b.iter(|| {
                        black_box(
                            choose_refresh(agg, input, r, SolverStrategy::Fptas(0.1))
                                .expect("plan"),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_choose_refresh);
criterion_main!(benches);
