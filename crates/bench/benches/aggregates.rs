//! Criterion micro-benchmarks for bounded-answer computation: the cost of
//! step 1 / step 3 of query execution (§4), including the tight-vs-loose
//! AVG comparison (Appendix E's O(n log n) vs the linear loose bound).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use trapp_core::agg::avg::{bounded_avg_loose, bounded_avg_tight};
use trapp_core::agg::{bounded_answer, AggInput, Aggregate};
use trapp_expr::{BinaryOp, ColumnRef, Expr};
use trapp_types::Value;
use trapp_workload::netmon::{generate, NetworkConfig};

fn selected_input(links: usize) -> AggInput {
    let network = generate(&NetworkConfig {
        nodes: 50,
        extra_links: links.saturating_sub(49),
        ..NetworkConfig::default()
    });
    let (cache, _) = network.build_tables();
    let schema = cache.schema().clone();
    let latency = Expr::Column(ColumnRef::bare("latency"))
        .bind(&schema)
        .expect("col");
    let pred = Expr::binary(
        BinaryOp::Gt,
        Expr::Column(ColumnRef::bare("traffic")),
        Expr::Literal(Value::Float(250.0)),
    )
    .bind(&schema)
    .expect("pred");
    AggInput::build(&cache, Some(&pred), Some(&latency)).expect("input")
}

fn bench_bounded_answers(c: &mut Criterion) {
    let mut group = c.benchmark_group("bounded_answer");
    for links in [200usize, 2000] {
        let input = selected_input(links);
        for agg in [
            Aggregate::Min,
            Aggregate::Max,
            Aggregate::Sum,
            Aggregate::Count,
            Aggregate::Avg,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{agg:?}").to_lowercase(), input.items.len()),
                &input,
                |b, input| b.iter(|| black_box(bounded_answer(agg, input).expect("answer"))),
            );
        }
    }
    group.finish();
}

fn bench_avg_tight_vs_loose(c: &mut Criterion) {
    let mut group = c.benchmark_group("avg_bounds");
    for links in [200usize, 2000] {
        let input = selected_input(links);
        group.bench_with_input(
            BenchmarkId::new("tight_nlogn", input.items.len()),
            &input,
            |b, input| b.iter(|| black_box(bounded_avg_tight(input).expect("tight"))),
        );
        group.bench_with_input(
            BenchmarkId::new("loose_linear", input.items.len()),
            &input,
            |b, input| b.iter(|| black_box(bounded_avg_loose(input).expect("loose"))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_bounded_answers, bench_avg_tight_vs_loose);
criterion_main!(benches);
