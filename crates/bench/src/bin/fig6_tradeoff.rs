//! Figure 6: the precision-performance tradeoff for CHOOSE_REFRESH_SUM —
//! refresh cost as a function of the precision constraint R, ε = 0.1.
//!
//! This is the concrete instantiation of Figure 1(b): a continuous,
//! monotonically decreasing curve from "refresh almost everything" at
//! R = 0 to "answer from cache alone" once R exceeds the total cached
//! uncertainty.

use trapp_bench::experiments::{fig6_sweep, stock_input};
use trapp_bench::tablefmt::{num, render};
use trapp_workload::stocks::StockConfig;

fn main() {
    let config = StockConfig::default();
    let input = stock_input(&config).expect("input");
    let total_width: f64 = input.items.iter().map(|i| i.interval.width()).sum();
    let total_cost: f64 = input.items.iter().map(|i| i.cost).sum();

    // Sweep R from 0 past the total width (the natural "free" point).
    let steps = 28;
    let rs: Vec<f64> = (0..=steps)
        .map(|i| total_width * 1.1 * i as f64 / steps as f64)
        .collect();
    let rows = fig6_sweep(&config, 0.1, &rs).expect("sweep");

    println!("== Figure 6: precision-performance tradeoff (ε = 0.1) ==");
    println!(
        "(90 synthetic stocks, seed {}; total bound width = {}, total cost = {})\n",
        config.seed,
        num(total_width, 1),
        num(total_cost, 0)
    );

    let max_cost = rows.iter().map(|r| r.refresh_cost).fold(0.0, f64::max);
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            let bar_len = if max_cost > 0.0 {
                ((row.refresh_cost / max_cost) * 40.0).round() as usize
            } else {
                0
            };
            vec![num(row.r, 1), num(row.refresh_cost, 1), "#".repeat(bar_len)]
        })
        .collect();
    println!(
        "{}",
        render(
            &["R (precision constraint)", "refresh cost", "performance"],
            &table
        )
    );
    println!("shape check: continuous, monotonically decreasing; cost = 0 once R ≥ total width.");
}
