//! ABL-3 (§5.2): solver quality — how far FPTAS and the greedy heuristics
//! land from the exact knapsack optimum, across instance classes that
//! stress them differently. (The *time* side of ABL-3 lives in
//! `cargo bench -p trapp-bench --bench knapsack`.)

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trapp_bench::tablefmt::{num, render};
use trapp_knapsack::{Instance, Item};

/// Instance classes with different profit/weight structure.
fn make_instance(class: &str, n: usize, seed: u64) -> Instance {
    let mut rng = StdRng::seed_from_u64(seed);
    let items: Vec<Item> = (0..n)
        .map(|_| {
            let (p, w) = match class {
                // The paper's cost model: independent integer costs.
                "uncorrelated" => (rng.gen_range(1..=10) as f64, rng.gen_range(0.1..5.0)),
                // Profit ∝ weight (hard for greedy: all densities equal-ish).
                "correlated" => {
                    let w: f64 = rng.gen_range(0.5..5.0);
                    (w + rng.gen_range(0.0..0.5), w)
                }
                // Few heavy/valuable items among many light/cheap ones.
                "bimodal" => {
                    if rng.gen_bool(0.2) {
                        (rng.gen_range(8..=10) as f64, rng.gen_range(4.0..6.0))
                    } else {
                        (rng.gen_range(1..=3) as f64, rng.gen_range(0.1..1.0))
                    }
                }
                _ => unreachable!(),
            };
            Item::new(p, w).expect("valid item")
        })
        .collect();
    let total: f64 = items.iter().map(|i| i.weight).sum();
    Instance::new(items, total * 0.35).expect("valid instance")
}

fn main() {
    println!("== ABL-3: knapsack solver quality (profit kept, relative to exact) ==\n");
    let n = 90; // the paper's instance size
    let seeds: Vec<u64> = (1..=20).collect();

    let mut rows = Vec::new();
    for class in ["uncorrelated", "correlated", "bimodal"] {
        let mut ratios: Vec<(f64, f64, f64, f64)> = Vec::new();
        for &seed in &seeds {
            let inst = make_instance(class, n, seed);
            let exact = inst.solve_exact();
            assert!(exact.optimal);
            let opt = exact.profit.max(1e-12);
            let f10 = inst.solve_fptas(0.1).expect("eps").profit / opt;
            let f01 = inst.solve_fptas(0.01).expect("eps").profit / opt;
            let gd = inst.solve_greedy_density().profit / opt;
            let gw = inst.solve_greedy_by_weight().profit / opt;
            ratios.push((f10, f01, gd, gw));
        }
        let avg = |f: fn(&(f64, f64, f64, f64)) -> f64| {
            ratios.iter().map(f).sum::<f64>() / ratios.len() as f64
        };
        let min = |f: fn(&(f64, f64, f64, f64)) -> f64| {
            ratios.iter().map(f).fold(f64::INFINITY, f64::min)
        };
        rows.push(vec![
            class.to_string(),
            format!("{} (min {})", num(avg(|r| r.0), 4), num(min(|r| r.0), 4)),
            format!("{} (min {})", num(avg(|r| r.1), 4), num(min(|r| r.1), 4)),
            format!("{} (min {})", num(avg(|r| r.2), 4), num(min(|r| r.2), 4)),
            format!("{} (min {})", num(avg(|r| r.3), 4), num(min(|r| r.3), 4)),
        ]);
    }
    println!(
        "{}",
        render(
            &[
                "instance class",
                "fptas ε=0.1",
                "fptas ε=0.01",
                "greedy density",
                "greedy by weight"
            ],
            &rows
        )
    );
    println!("\n20 seeds × 90 items per class. Guarantees: fptas ≥ 1−ε, density ≥ 0.5;");
    println!("greedy-by-weight is only optimal under uniform profits, so it can trail badly");
    println!("on value-heterogeneous instances — exactly why CHOOSE_REFRESH_SUM needs the");
    println!("knapsack machinery once refresh costs vary (§5.2).");
}
