//! Figure 8: the Possible/Certain translation rules for range
//! comparisons, demonstrated exhaustively over representative interval
//! pairs.

use trapp_bench::tablefmt::render;
use trapp_types::{Interval, Tri};

fn main() {
    println!("== Figure 8: Possible / Certain translation of range comparisons ==\n");

    let pairs = [
        (
            Interval::new(1.0, 2.0).unwrap(),
            Interval::new(3.0, 4.0).unwrap(),
        ),
        (
            Interval::new(1.0, 3.0).unwrap(),
            Interval::new(2.0, 4.0).unwrap(),
        ),
        (
            Interval::new(3.0, 4.0).unwrap(),
            Interval::new(1.0, 2.0).unwrap(),
        ),
        (
            Interval::new(1.0, 2.0).unwrap(),
            Interval::new(2.0, 3.0).unwrap(),
        ),
        (
            Interval::new(2.0, 2.0).unwrap(),
            Interval::new(2.0, 2.0).unwrap(),
        ),
        (
            Interval::new(1.0, 2.0).unwrap(),
            Interval::new(1.0, 2.0).unwrap(),
        ),
    ];

    type TriCmp = fn(Interval, Interval) -> Tri;
    let ops: [(&str, TriCmp); 6] = [
        ("x = y", Interval::tri_eq),
        ("x <> y", Interval::tri_ne),
        ("x < y", Interval::tri_lt),
        ("x <= y", Interval::tri_le),
        ("x > y", Interval::tri_gt),
        ("x >= y", Interval::tri_ge),
    ];

    let mut rows = Vec::new();
    for (x, y) in pairs {
        for (name, f) in ops {
            let tri = f(x, y);
            rows.push(vec![
                format!("{x}"),
                format!("{y}"),
                name.to_string(),
                yes_no(tri.is_possible()),
                yes_no(tri.is_certain()),
                // The Figure 8 closed forms, shown for comparison.
                closed_form_possible(name, x, y),
                closed_form_certain(name, x, y),
            ]);
        }
    }
    println!(
        "{}",
        render(
            &[
                "x",
                "y",
                "op",
                "Possible",
                "Certain",
                "rule: Possible",
                "rule: Certain"
            ],
            &rows
        )
    );
    println!("rule columns evaluate the Figure 8 endpoint formulas directly; they must match.");

    // Verify the match programmatically so the harness fails loudly on
    // regression.
    for (x, y) in pairs {
        for (name, f) in ops {
            let tri = f(x, y);
            assert_eq!(yes_no(tri.is_possible()), closed_form_possible(name, x, y));
            assert_eq!(yes_no(tri.is_certain()), closed_form_certain(name, x, y));
        }
    }
    println!("all rules verified.");
}

fn yes_no(b: bool) -> String {
    if b { "yes" } else { "no" }.to_string()
}

/// Figure 8's Possible column, evaluated literally on endpoints.
fn closed_form_possible(op: &str, x: Interval, y: Interval) -> String {
    let (xmin, xmax, ymin, ymax) = (x.lo(), x.hi(), y.lo(), y.hi());
    yes_no(match op {
        "x = y" => xmin <= ymax && xmax >= ymin,
        "x <> y" => !(xmin == xmax && ymin == ymax && xmin == ymin),
        "x < y" => xmin < ymax,
        "x <= y" => xmin <= ymax,
        "x > y" => xmax > ymin,
        "x >= y" => xmax >= ymin,
        _ => unreachable!(),
    })
}

/// Figure 8's Certain column, evaluated literally on endpoints.
fn closed_form_certain(op: &str, x: Interval, y: Interval) -> String {
    let (xmin, xmax, ymin, ymax) = (x.lo(), x.hi(), y.lo(), y.hi());
    yes_no(match op {
        "x = y" => xmin == xmax && ymin == ymax && xmin == ymin,
        "x <> y" => !(xmin <= ymax && xmax >= ymin),
        "x < y" => xmax < ymin,
        "x <= y" => xmax <= ymin,
        "x > y" => xmin > ymax,
        "x >= y" => xmin >= ymax,
        _ => unreachable!(),
    })
}
