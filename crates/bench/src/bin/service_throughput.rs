//! Throughput / latency / round-trip benchmark for the `trapp-server`
//! query service, in nine parts:
//!
//! 1. **traffic mechanisms** (single shard): per-object baseline vs
//!    batched source round-trips vs batching + refresh coalescing;
//! 2. **shard scaling**: the same zipfian workload against 1/2/4/8 cache
//!    shards (`--shards 1,2,4,8`; a single value, e.g. `--shards 4`, runs
//!    that count against the 1-shard baseline) over the threaded
//!    transport — the PR 2 baseline curve;
//! 3. **transport duel**: at the largest shard count and `--sources`
//!    sources (default 64), thread-per-source `ChannelTransport` vs the
//!    completion-based `CompletionTransport` with a `--pool`-thread
//!    shared fetch pool — the regime where thread churn dominates;
//! 4. **update churn**: `--update-rate` (default 32) random-walk master
//!    writes per burst race the query stream, submitted in batches of
//!    [`UPDATE_BATCH`] through `QueryService::apply_update_batch` (one
//!    completion per shard × source batch instead of one blocking
//!    round-trip per write), so coalescing invalidation is measured
//!    under write pressure, not just read-only bursts;
//! 5. **query surface**: a mixed stream with `GROUP BY` and two-table
//!    join slices at 1 shard and at the largest shard count over the
//!    completion transport — every grouped answer is checked per group
//!    and every join answer against the join ground truth, read-only and
//!    under churn;
//! 6. **table scaling**: `--rows` (default 1k/10k/50k/200k; any size that
//!    fits in memory — validated against `/proc/meminfo` up front)
//!    group-pinned workloads with a *fixed* group size, full-scan
//!    planning (`cache_views = false`, the seed hot path) vs the
//!    incremental band-view cache + indexed CHOOSE_REFRESH — the
//!    per-pass rescan term in isolation, with zipfian repetition
//!    supplying the warm-view serving regime;
//! 7. **tpch scaling**: the TPC-H-derived three-table suite
//!    (`trapp_workload::tpch`) walked 100k → 1M total rows at 1 and 8
//!    shards, reporting per-query-class profiles (refresh rounds,
//!    fetched tuples, p50/p99 latency, ground-truth violations), plus a
//!    join-round duel pitting the batched multi-tuple join planner
//!    against the §7 one-tuple-per-round baseline
//!    (`batch_join_rounds = false`) on the same queries;
//! 8. **availability**: the churn workload under a deterministic
//!    [`ChaosTransport`] schedule — one of the sources failing each
//!    refresh op with p = 0.2, plus a scripted 500 ms wall-clock outage
//!    of that source mid-churn — served best-effort on both the blocking
//!    and completion transports. Reports qps, p99 latency, the degraded
//!    fraction, the mean achieved width of degraded answers, and the
//!    fraction of post-outage queries back at full precision; every
//!    answer (degraded or not) is still checked against the churn
//!    envelope, so a bound violation fails the run exactly as in the
//!    fault-free parts.
//! 9. **overload**: every query carries `DEADLINE 50` while one source
//!    answers 25 ms slow, and closed-loop client counts walk from light
//!    load to 2× worker saturation. BestEffort must answer everything —
//!    zero errors, zero bound violations, p99 bounded by the deadline —
//!    with the load-shed (degraded-width) fraction rising as queue wait
//!    eats the budget; a Strict run at 2× saturation may refuse, but
//!    only ever with the typed `DeadlineExceeded`. The admission ladder
//!    (queue-depth watermark widening) runs on the BestEffort steps.
//!
//! [`ChaosTransport`]: trapp_system::ChaosTransport
//!
//! Eight closed-loop clients drive the service over transports with
//! simulated per-round-trip latency; the stream is split into bursts with
//! the clock advancing between bursts, so every burst's bounds have
//! re-widened and tight queries must refresh again. Within a burst, hot
//! groups overlap — the coalescing opportunity.
//!
//! Every read-only answer is checked against ground truth computed from
//! the master values (`contains(truth) && width ≤ R`). Under churn the
//! instantaneous truth is a moving target, so answers are checked against
//! the per-burst envelope of master values
//! (`loadgen::ground_truth_bounds`) plus a final `WITHIN 0` exactness
//! probe against the tracked masters. Any violation fails the run.
//!
//! `--json PATH` additionally writes every number in machine-readable
//! form — `BENCH_5.json` at the repository root is the checked-in
//! baseline. `--quick` shrinks every part for CI smoke runs.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trapp_bench::json::Json;
use trapp_bench::tablefmt;
use trapp_server::{DegradationPolicy, QueryService, ServiceBuilder, ServiceConfig};
use trapp_system::{ChaosConfig, DelaySpec};
use trapp_types::{ObjectId, SourceId, Value};
use trapp_workload::loadgen::{self, LoadConfig, QueryShape, ServiceWorkload};
use trapp_workload::tpch::{self, TpchClass, TpchWorkload, Truth};

const CLIENTS: usize = 8;
const BURSTS: usize = 8;
const LATENCY: Duration = Duration::from_micros(200);
/// Updates per `apply_update_batch` call in the churn stream.
const UPDATE_BATCH: usize = 8;

/// Which transport stack a run is built over.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TransportKind {
    /// `ChannelTransport`: one OS thread per source per shard.
    Channel,
    /// `CompletionTransport` over one service-wide fetch pool (`None` =
    /// adaptive sizing from the machine and shard count).
    Completion { pool: Option<usize> },
}

impl TransportKind {
    fn name(&self) -> &'static str {
        match self {
            TransportKind::Channel => "channel",
            TransportKind::Completion { .. } => "completion",
        }
    }
}

fn build_service(
    w: &ServiceWorkload,
    config: ServiceConfig,
    transport: TransportKind,
) -> QueryService {
    build_service_with(w, config, transport, None)
}

fn build_service_with(
    w: &ServiceWorkload,
    config: ServiceConfig,
    transport: TransportKind,
    chaos: Option<ChaosConfig>,
) -> QueryService {
    let mut b = ServiceBuilder::new()
        .initial_width(1.0)
        .config(config)
        .partition_by("grp")
        .table(loadgen::table());
    if let Some(cfg) = chaos {
        b = b.chaos(cfg);
    }
    if !w.segments.is_empty() {
        b = b.table(loadgen::segments_table());
    }
    for r in &w.rows {
        b = b.row("metrics", r.source, r.cells.clone());
    }
    // Segments after every metrics row: metrics row k keeps backing
    // object k+1, which the churn stream relies on.
    for s in &w.segments {
        b = b.row("segments", s.source, s.cells.clone());
    }
    match transport {
        TransportKind::Channel => b.build_channel(LATENCY).expect("service builds"),
        TransportKind::Completion { pool } => {
            b.build_completion(LATENCY, pool).expect("service builds")
        }
    }
}

struct RunResult {
    label: String,
    transport: &'static str,
    shards: usize,
    wall: Duration,
    latencies_us: Vec<f64>,
    queries: u64,
    scattered: u64,
    round_trips: u64,
    forwarded: u64,
    coalesced: u64,
    updates: u64,
    violations: usize,
}

impl RunResult {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.wall.as_secs_f64()
    }
}

/// Per-row master-value state while an update stream runs: the current
/// value plus the envelope (`lo`, `hi`) of every value the row has held
/// since the envelope was last reset. The envelope is extended *before*
/// the write reaches the source, so at any instant the true master lies
/// inside it — which is what makes checking racing answers against it
/// sound.
struct ChurnState {
    rows: Vec<(f64, f64, f64)>, // (current, lo, hi)
}

impl ChurnState {
    fn new(w: &ServiceWorkload) -> ChurnState {
        ChurnState {
            rows: w
                .rows
                .iter()
                .map(|r| {
                    let m = r.cells[1].as_interval().expect("load cell").midpoint();
                    (m, m, m)
                })
                .collect(),
        }
    }

    fn reset_envelope(&mut self) {
        for (cur, lo, hi) in &mut self.rows {
            *lo = *cur;
            *hi = *cur;
        }
    }

    fn envelope(&self) -> Vec<(f64, f64)> {
        self.rows.iter().map(|&(_, lo, hi)| (lo, hi)).collect()
    }
}

fn run(
    label: impl Into<String>,
    w: &ServiceWorkload,
    config: ServiceConfig,
    transport: TransportKind,
    update_rate: u64,
) -> RunResult {
    let service = build_service(w, config, transport);
    let latencies = Mutex::new(Vec::with_capacity(w.queries.len()));
    let violations = Mutex::new(0usize);
    let churn = Mutex::new(ChurnState::new(w));
    let started = Instant::now();

    let burst_len = w.queries.len().div_ceil(BURSTS);
    let bursts_run = w.queries.chunks(burst_len).count() as u64;
    for (burst_idx, burst) in w.queries.chunks(burst_len).enumerate() {
        // Let every bound re-widen: this burst must pay for precision
        // again.
        service.advance_clock(25.0);
        churn.lock().unwrap().reset_envelope();
        let per_client = burst.len().div_ceil(CLIENTS);
        let (service, latencies, violations, churn) = (&service, &latencies, &violations, &churn);
        std::thread::scope(|s| {
            if update_rate > 0 {
                // The update stream races the query burst: a seeded random
                // walk over row masters, clamped to the value range and
                // submitted in UPDATE_BATCH-sized `apply_update_batch`
                // calls — the batched write path under measurement.
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(w.config.seed ^ ((burst_idx as u64) << 17));
                    let (lo, hi) = w.config.value_range;
                    let step = (hi - lo) * 0.1;
                    let mut remaining = update_rate as usize;
                    while remaining > 0 {
                        let n = remaining.min(UPDATE_BATCH);
                        remaining -= n;
                        // Extend every envelope *before* any write of the
                        // batch is published, so racing answers can never
                        // observe a master outside it.
                        let batch: Vec<(ObjectId, f64)> = {
                            let mut state = churn.lock().unwrap();
                            (0..n)
                                .map(|_| {
                                    let row = rng.gen_range(0..w.rows.len());
                                    let (cur, env_lo, env_hi) = &mut state.rows[row];
                                    *cur = (*cur + rng.gen_range(-step..=step)).clamp(lo, hi);
                                    *env_lo = env_lo.min(*cur);
                                    *env_hi = env_hi.max(*cur);
                                    (ObjectId::new(row as u64 + 1), *cur)
                                })
                                .collect()
                        };
                        service.apply_update_batch(&batch).expect("updates route");
                        std::thread::sleep(Duration::from_micros(50 * n as u64));
                    }
                });
            }
            for chunk in burst.chunks(per_client) {
                s.spawn(move || {
                    for q in chunk {
                        let t0 = Instant::now();
                        let reply = service.query(&q.sql).expect("query runs");
                        let us = t0.elapsed().as_secs_f64() * 1e6;
                        latencies.lock().unwrap().push(us);
                        // Read-only runs check containment of the exact
                        // truth; under churn the truth moves while the
                        // query runs, but it cannot leave the burst
                        // envelope — a correct answer must intersect it.
                        let ok = match q.shape {
                            QueryShape::Grouped => {
                                let bounds = if update_rate == 0 {
                                    loadgen::ground_truth_groups(w, q)
                                        .into_iter()
                                        .map(|(g, t)| (g, (t, t)))
                                        .collect::<Vec<_>>()
                                } else {
                                    let env = churn.lock().unwrap().envelope();
                                    loadgen::ground_truth_group_bounds(w, q, &env)
                                };
                                reply.groups.len() == bounds.len()
                                    && reply.groups.iter().all(|g| {
                                        let id = match g.key.first() {
                                            Some(Value::Int(v)) => *v,
                                            _ => return false,
                                        };
                                        let Some(&(_, (lo, hi))) =
                                            bounds.iter().find(|(tg, _)| *tg == id)
                                        else {
                                            return false;
                                        };
                                        let range = g.result.answer.range;
                                        range.hi() >= lo - 1e-9 && range.lo() <= hi + 1e-9
                                    })
                            }
                            QueryShape::Scalar | QueryShape::Join => {
                                let range = reply.result.answer.range;
                                if update_rate == 0 {
                                    let t = loadgen::ground_truth(w, q);
                                    range.lo() - 1e-9 <= t && t <= range.hi() + 1e-9
                                } else {
                                    let env = churn.lock().unwrap().envelope();
                                    let (lo, hi) = loadgen::ground_truth_bounds(w, q, &env);
                                    range.hi() >= lo - 1e-9 && range.lo() <= hi + 1e-9
                                }
                            }
                        };
                        if !ok || !reply.result.satisfied {
                            *violations.lock().unwrap() += 1;
                        }
                    }
                });
            }
        });
    }

    let wall = started.elapsed();

    if update_rate > 0 {
        // Final exactness probe: with the writers quiesced, a WITHIN 0
        // query must reproduce the tracked masters to the bit — any
        // cache/monitor desync the churn provoked surfaces here.
        service.advance_clock(25.0);
        let reply = service
            .query("SELECT SUM(load) WITHIN 0 FROM metrics")
            .expect("final probe runs");
        let expected: f64 = churn
            .lock()
            .unwrap()
            .rows
            .iter()
            .map(|&(cur, _, _)| cur)
            .sum();
        let got = reply.result.answer.range.midpoint();
        if !reply.result.answer.is_exact()
            || (got - expected).abs() > 1e-6 * expected.abs().max(1.0)
        {
            eprintln!("final exactness probe failed: got {got}, masters sum to {expected}");
            *violations.lock().unwrap() += 1;
        }
    }

    let stats = service.stats();
    service.shutdown();
    RunResult {
        label: label.into(),
        transport: transport.name(),
        shards: config.shards,
        wall,
        latencies_us: latencies.into_inner().unwrap(),
        queries: stats.queries,
        scattered: stats.scatter_queries,
        round_trips: stats.round_trips,
        forwarded: stats.refreshes_forwarded,
        coalesced: stats.refreshes_coalesced,
        updates: update_rate * bursts_run,
        violations: violations.into_inner().unwrap(),
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn render(title: &str, runs: &[RunResult]) -> usize {
    let mut rows = Vec::new();
    let mut total_violations = 0;
    for r in runs {
        let mut sorted = r.latencies_us.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        rows.push(vec![
            r.label.clone(),
            tablefmt::num(r.wall.as_secs_f64() * 1e3, 1),
            tablefmt::num(r.qps(), 0),
            tablefmt::num(percentile(&sorted, 0.5), 0),
            tablefmt::num(percentile(&sorted, 0.95), 0),
            r.scattered.to_string(),
            r.round_trips.to_string(),
            tablefmt::num(r.round_trips as f64 / r.queries.max(1) as f64, 2),
            r.forwarded.to_string(),
            r.coalesced.to_string(),
            r.violations.to_string(),
        ]);
        total_violations += r.violations;
    }
    println!("{title}");
    println!(
        "{}",
        tablefmt::render(
            &[
                "config",
                "wall ms",
                "qps",
                "p50 µs",
                "p95 µs",
                "scattered",
                "round-trips",
                "rt/query",
                "refreshes",
                "coalesced",
                "violations",
            ],
            &rows,
        )
    );
    total_violations
}

fn run_json(r: &RunResult) -> Json {
    let mut sorted = r.latencies_us.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Json::obj([
        ("label", Json::str(r.label.clone())),
        ("transport", Json::str(r.transport)),
        ("shards", Json::Num(r.shards as f64)),
        ("wall_ms", Json::Num(r.wall.as_secs_f64() * 1e3)),
        ("qps", Json::Num(r.qps())),
        ("p50_us", Json::Num(percentile(&sorted, 0.5))),
        ("p95_us", Json::Num(percentile(&sorted, 0.95))),
        ("queries", Json::Num(r.queries as f64)),
        ("scattered", Json::Num(r.scattered as f64)),
        ("round_trips", Json::Num(r.round_trips as f64)),
        (
            "rt_per_query",
            Json::Num(r.round_trips as f64 / r.queries.max(1) as f64),
        ),
        ("forwarded", Json::Num(r.forwarded as f64)),
        ("coalesced", Json::Num(r.coalesced as f64)),
        ("updates", Json::Num(r.updates as f64)),
        ("violations", Json::Num(r.violations as f64)),
    ])
}

/// Wall-clock length of part 8's scripted mid-churn outage.
const AVAIL_OUTAGE: Duration = Duration::from_millis(500);

/// One availability run's numbers (part 8).
struct AvailabilityResult {
    label: String,
    transport: &'static str,
    shards: usize,
    wall: Duration,
    latencies_us: Vec<f64>,
    queries: u64,
    errors: u64,
    degraded: u64,
    /// Sum of [`DegradedInfo::achieved_width`] over degraded replies.
    ///
    /// [`DegradedInfo::achieved_width`]: trapp_server::DegradedInfo
    width_sum: f64,
    injected: u64,
    chaos_ops: u64,
    recovered: usize,
    recovery_probes: usize,
    violations: usize,
}

impl AvailabilityResult {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.wall.as_secs_f64()
    }
    fn degraded_fraction(&self) -> f64 {
        self.degraded as f64 / self.queries.max(1) as f64
    }
    fn mean_achieved_width(&self) -> f64 {
        if self.degraded == 0 {
            0.0
        } else {
            self.width_sum / self.degraded as f64
        }
    }
    fn recovered_fraction(&self) -> f64 {
        self.recovered as f64 / self.recovery_probes.max(1) as f64
    }
}

/// Part 8's churn loop: the query stream races the update stream while a
/// seeded chaos schedule fails one source's refresh ops with p = 0.2 and
/// a driver thread scripts a [`AVAIL_OUTAGE`] hard outage of that source
/// mid-run. Served best-effort: errors are counted (and fail the run —
/// best-effort must never error), degraded replies are counted and their
/// achieved widths averaged, and *every* reply is checked against the
/// churn envelope — a degraded bound is wider, never wrong. After the
/// bursts (outage over, breaker cooldown elapsed) a probe phase measures
/// what fraction of queries are back at full precision.
fn run_availability(
    label: impl Into<String>,
    w: &ServiceWorkload,
    shards: usize,
    transport: TransportKind,
    update_rate: u64,
    quick: bool,
) -> AvailabilityResult {
    let faulty = SourceId::new(1);
    let config = ServiceConfig {
        workers: CLIENTS,
        shards,
        degradation: DegradationPolicy::BestEffort,
        // One extra retry over the default: the probe phase measures
        // recovery *through* the residual p = 0.2 flakiness.
        retry: trapp_server::RetryPolicy {
            max_retries: 3,
            ..trapp_server::RetryPolicy::default()
        },
        ..ServiceConfig::default()
    };
    let service = build_service_with(
        w,
        config,
        transport,
        Some(ChaosConfig {
            seed: w.config.seed ^ 0xC4A0,
            fail_p: vec![(faulty, 0.2)],
            ..ChaosConfig::default()
        }),
    );
    let control = service
        .chaos_control()
        .expect("availability run is built with chaos")
        .clone();

    let latencies = Mutex::new(Vec::with_capacity(w.queries.len()));
    let violations = Mutex::new(0usize);
    let errors = Mutex::new(0u64);
    let degraded = Mutex::new((0u64, 0.0f64)); // (count, achieved-width sum)
    let churn = Mutex::new(ChurnState::new(w));
    let mut outage: Option<std::thread::JoinHandle<()>> = None;
    let started = Instant::now();

    let burst_len = w.queries.len().div_ceil(BURSTS);
    for (burst_idx, burst) in w.queries.chunks(burst_len).enumerate() {
        service.advance_clock(25.0);
        churn.lock().unwrap().reset_envelope();
        if burst_idx == BURSTS / 2 {
            // The scripted outage: a detached driver takes the flaky
            // source hard down mid-churn and restores it 500 ms later,
            // racing the remaining bursts.
            let control = control.clone();
            control.force_down(faulty);
            outage = Some(std::thread::spawn(move || {
                std::thread::sleep(AVAIL_OUTAGE);
                control.restore(faulty);
            }));
        }
        let per_client = burst.len().div_ceil(CLIENTS);
        let (service, latencies, violations, errors, degraded, churn) = (
            &service,
            &latencies,
            &violations,
            &errors,
            &degraded,
            &churn,
        );
        std::thread::scope(|s| {
            if update_rate > 0 {
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(w.config.seed ^ ((burst_idx as u64) << 17));
                    let (lo, hi) = w.config.value_range;
                    let step = (hi - lo) * 0.1;
                    let mut remaining = update_rate as usize;
                    while remaining > 0 {
                        let n = remaining.min(UPDATE_BATCH);
                        remaining -= n;
                        let batch: Vec<(ObjectId, f64)> = {
                            let mut state = churn.lock().unwrap();
                            (0..n)
                                .map(|_| {
                                    let row = rng.gen_range(0..w.rows.len());
                                    let (cur, env_lo, env_hi) = &mut state.rows[row];
                                    *cur = (*cur + rng.gen_range(-step..=step)).clamp(lo, hi);
                                    *env_lo = env_lo.min(*cur);
                                    *env_hi = env_hi.max(*cur);
                                    (ObjectId::new(row as u64 + 1), *cur)
                                })
                                .collect()
                        };
                        // The update plane is chaos-exempt: masters keep
                        // moving while the pull path is under fault load.
                        service.apply_update_batch(&batch).expect("updates route");
                        std::thread::sleep(Duration::from_micros(50 * n as u64));
                    }
                });
            }
            for chunk in burst.chunks(per_client) {
                s.spawn(move || {
                    for q in chunk {
                        let t0 = Instant::now();
                        let reply = match service.query(&q.sql) {
                            Ok(reply) => reply,
                            Err(_) => {
                                // Best-effort must degrade, never refuse.
                                *errors.lock().unwrap() += 1;
                                continue;
                            }
                        };
                        let us = t0.elapsed().as_secs_f64() * 1e6;
                        latencies.lock().unwrap().push(us);
                        if let Some(d) = &reply.degraded {
                            let mut deg = degraded.lock().unwrap();
                            deg.0 += 1;
                            deg.1 += d.achieved_width;
                        }
                        let range = reply.result.answer.range;
                        let env = churn.lock().unwrap().envelope();
                        let (lo, hi) = loadgen::ground_truth_bounds(w, q, &env);
                        if !(range.hi() >= lo - 1e-9 && range.lo() <= hi + 1e-9) {
                            *violations.lock().unwrap() += 1;
                        }
                    }
                });
            }
        });
    }
    let wall = started.elapsed();
    if let Some(h) = outage {
        h.join().expect("outage driver");
    }

    // Recovery: outage over; give every shard's breaker its cooldown,
    // then measure how many queries come back at full precision through
    // the residual flakiness.
    std::thread::sleep(config.health.cooldown + Duration::from_millis(50));
    let recovery_probes = if quick { 40 } else { 100 };
    let mut recovered = 0usize;
    for i in 0..recovery_probes {
        service.advance_clock(25.0);
        let g = i % w.config.groups;
        let reply = service
            .query(format!(
                "SELECT SUM(load) WITHIN 0.5 FROM metrics WHERE grp = {g}"
            ))
            .expect("recovery probe runs");
        if reply.result.satisfied && reply.degraded.is_none() {
            recovered += 1;
        }
    }

    let stats = service.stats();
    let (chaos_ops, injected) = (control.ops(), control.injected_failures());
    service.shutdown();
    let (degraded, width_sum) = degraded.into_inner().unwrap();
    AvailabilityResult {
        label: label.into(),
        transport: transport.name(),
        shards,
        wall,
        latencies_us: latencies.into_inner().unwrap(),
        queries: stats.queries,
        errors: errors.into_inner().unwrap(),
        degraded,
        width_sum,
        injected,
        chaos_ops,
        recovered,
        recovery_probes,
        violations: violations.into_inner().unwrap(),
    }
}

fn render_availability(title: &str, runs: &[AvailabilityResult]) -> usize {
    let mut rows = Vec::new();
    let mut total = 0;
    for r in runs {
        let mut sorted = r.latencies_us.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        rows.push(vec![
            r.label.clone(),
            tablefmt::num(r.wall.as_secs_f64() * 1e3, 1),
            tablefmt::num(r.qps(), 0),
            tablefmt::num(percentile(&sorted, 0.5), 0),
            tablefmt::num(percentile(&sorted, 0.99), 0),
            r.errors.to_string(),
            r.degraded.to_string(),
            tablefmt::num(r.degraded_fraction() * 100.0, 1),
            tablefmt::num(r.mean_achieved_width(), 2),
            r.injected.to_string(),
            tablefmt::num(r.recovered_fraction() * 100.0, 1),
            r.violations.to_string(),
        ]);
        // Errors fail the run: best-effort service must never refuse.
        total += r.violations + r.errors as usize;
    }
    println!("{title}");
    println!(
        "{}",
        tablefmt::render(
            &[
                "config",
                "wall ms",
                "qps",
                "p50 µs",
                "p99 µs",
                "errors",
                "degraded",
                "degr %",
                "mean width",
                "injected",
                "recovered %",
                "violations",
            ],
            &rows,
        )
    );
    total
}

fn availability_json(r: &AvailabilityResult) -> Json {
    let mut sorted = r.latencies_us.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Json::obj([
        ("label", Json::str(r.label.clone())),
        ("transport", Json::str(r.transport)),
        ("shards", Json::Num(r.shards as f64)),
        ("wall_ms", Json::Num(r.wall.as_secs_f64() * 1e3)),
        ("qps", Json::Num(r.qps())),
        ("p50_us", Json::Num(percentile(&sorted, 0.5))),
        ("p99_us", Json::Num(percentile(&sorted, 0.99))),
        ("queries", Json::Num(r.queries as f64)),
        ("errors", Json::Num(r.errors as f64)),
        ("degraded", Json::Num(r.degraded as f64)),
        ("degraded_fraction", Json::Num(r.degraded_fraction())),
        ("mean_achieved_width", Json::Num(r.mean_achieved_width())),
        ("chaos_ops", Json::Num(r.chaos_ops as f64)),
        ("injected_failures", Json::Num(r.injected as f64)),
        ("recovered_fraction", Json::Num(r.recovered_fraction())),
        ("recovery_probes", Json::Num(r.recovery_probes as f64)),
        ("violations", Json::Num(r.violations as f64)),
    ])
}

/// Part 9's per-query deadline budget, milliseconds.
const OVERLOAD_DEADLINE_MS: f64 = 50.0;
/// Part 9's slow-source injected latency (blocking sends sleep this long).
const OVERLOAD_DELAY: Duration = Duration::from_millis(25);
/// Scheduling slack allowed on top of the deadline before part 9 fails a
/// run's p99: the deadline bounds queue wait + fetch, but thread wakeups
/// and the final cache-only install ride on top.
const OVERLOAD_P99_GRACE: f64 = 1.5;

/// One overload run's numbers (part 9).
struct OverloadResult {
    label: String,
    policy: &'static str,
    clients: usize,
    wall: Duration,
    latencies_us: Vec<f64>,
    queries: u64,
    /// Typed `DeadlineExceeded` refusals (Strict's only legal error).
    deadline_errors: u64,
    /// Every other error — fails the run under either policy.
    other_errors: u64,
    /// Replies flagged `load_shed`: the constraint was deliberately
    /// relaxed (deadline widening or admission widening).
    degraded: u64,
    width_sum: f64,
    deadline_widened: u64,
    admission_widened: u64,
    violations: usize,
}

impl OverloadResult {
    fn qps(&self) -> f64 {
        self.queries as f64 / self.wall.as_secs_f64()
    }
    fn errors(&self) -> u64 {
        self.deadline_errors + self.other_errors
    }
    fn degraded_fraction(&self) -> f64 {
        self.degraded as f64 / self.queries.max(1) as f64
    }
    fn mean_achieved_width(&self) -> f64 {
        if self.degraded == 0 {
            0.0
        } else {
            self.width_sum / self.degraded as f64
        }
    }
    fn p99_us(&self) -> f64 {
        let mut sorted = self.latencies_us.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        percentile(&sorted, 0.99)
    }
}

/// Part 9's overload loop: every query carries `DEADLINE
/// OVERLOAD_DEADLINE_MS` while one source answers [`OVERLOAD_DELAY`] slow
/// on the blocking transport, and `clients` closed-loop submitters drive
/// a fixed worker pool — past saturation, queue wait eats the budget and
/// the deadline machinery must widen (BestEffort) or refuse with the
/// typed error (Strict). Since the masters never move, *every* reply —
/// shed or not — must still contain the static ground truth; p99 beyond
/// `deadline × OVERLOAD_P99_GRACE` fails the run too, because a deadline
/// that counts from enqueue bounds the whole client-observed latency.
fn run_overload(
    label: impl Into<String>,
    w: &ServiceWorkload,
    clients: usize,
    policy: DegradationPolicy,
    admission: trapp_server::AdmissionConfig,
) -> OverloadResult {
    let slow = SourceId::new(1);
    let config = ServiceConfig {
        workers: CLIENTS,
        shards: 1,
        degradation: policy,
        // Attempt caps come from the deadline, not the per-try timeout:
        // with `fetch_timeout` past the budget, an expired wait *is* a
        // blown deadline, so Strict surfaces `DeadlineExceeded` rather
        // than a raw per-try `Timeout`.
        retry: trapp_server::RetryPolicy {
            max_retries: 1,
            fetch_timeout: Duration::from_millis(200),
            ..trapp_server::RetryPolicy::default()
        },
        // Deadline expiries are not source failures: keep the breakers
        // closed so every error below is the deadline machinery's.
        health: trapp_server::HealthConfig {
            failure_threshold: 1000,
            ..trapp_server::HealthConfig::default()
        },
        admission,
        ..ServiceConfig::default()
    };
    let service = build_service_with(
        w,
        config,
        TransportKind::Channel,
        Some(ChaosConfig {
            seed: w.config.seed ^ 0x0EAD,
            delay: vec![(slow, DelaySpec::fixed(OVERLOAD_DELAY))],
            ..ChaosConfig::default()
        }),
    );

    let latencies = Mutex::new(Vec::with_capacity(w.queries.len()));
    let violations = Mutex::new(0usize);
    let deadline_errors = Mutex::new(0u64);
    let other_errors = Mutex::new(0u64);
    let degraded = Mutex::new((0u64, 0.0f64)); // (load-shed count, width sum)
    let started = Instant::now();

    let burst_len = w.queries.len().div_ceil(BURSTS);
    for burst in w.queries.chunks(burst_len) {
        service.advance_clock(25.0);
        let per_client = burst.len().div_ceil(clients);
        let (service, latencies, violations, deadline_errors, other_errors, degraded) = (
            &service,
            &latencies,
            &violations,
            &deadline_errors,
            &other_errors,
            &degraded,
        );
        std::thread::scope(|s| {
            for chunk in burst.chunks(per_client) {
                s.spawn(move || {
                    for q in chunk {
                        let t0 = Instant::now();
                        let reply = match service.query(&q.sql) {
                            Ok(reply) => reply,
                            Err(trapp_types::TrappError::DeadlineExceeded { .. }) => {
                                *deadline_errors.lock().unwrap() += 1;
                                continue;
                            }
                            Err(_) => {
                                *other_errors.lock().unwrap() += 1;
                                continue;
                            }
                        };
                        let us = t0.elapsed().as_secs_f64() * 1e6;
                        latencies.lock().unwrap().push(us);
                        if let Some(d) = &reply.degraded {
                            if d.load_shed {
                                let mut deg = degraded.lock().unwrap();
                                deg.0 += 1;
                                deg.1 += d.achieved_width;
                            }
                        }
                        // Shed or not, the interval must contain the
                        // (static) truth — load never buys wrongness.
                        let range = reply.result.answer.range;
                        let t = loadgen::ground_truth(w, q);
                        if !(range.lo() - 1e-9 <= t && t <= range.hi() + 1e-9) {
                            *violations.lock().unwrap() += 1;
                        }
                    }
                });
            }
        });
    }
    let wall = started.elapsed();

    let stats = service.stats();
    service.shutdown();
    let (degraded, width_sum) = degraded.into_inner().unwrap();
    let mut result = OverloadResult {
        label: label.into(),
        policy: match policy {
            DegradationPolicy::Strict => "strict",
            DegradationPolicy::BestEffort => "best-effort",
        },
        clients,
        wall,
        latencies_us: latencies.into_inner().unwrap(),
        queries: stats.queries,
        deadline_errors: deadline_errors.into_inner().unwrap(),
        other_errors: other_errors.into_inner().unwrap(),
        degraded,
        width_sum,
        deadline_widened: stats.deadline_widened,
        admission_widened: stats.admission_widened,
        violations: violations.into_inner().unwrap(),
    };
    let p99_limit_us = OVERLOAD_DEADLINE_MS * 1e3 * OVERLOAD_P99_GRACE;
    if result.p99_us() > p99_limit_us {
        eprintln!(
            "overload {}: p99 {}µs blew the deadline bound ({}µs)",
            result.label,
            result.p99_us(),
            p99_limit_us,
        );
        result.violations += 1;
    }
    result
}

fn render_overload(title: &str, runs: &[OverloadResult]) -> usize {
    let mut rows = Vec::new();
    let mut total = 0;
    for r in runs {
        let mut sorted = r.latencies_us.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        rows.push(vec![
            r.label.clone(),
            r.clients.to_string(),
            tablefmt::num(r.wall.as_secs_f64() * 1e3, 1),
            tablefmt::num(r.qps(), 0),
            tablefmt::num(percentile(&sorted, 0.5), 0),
            tablefmt::num(percentile(&sorted, 0.99), 0),
            r.errors().to_string(),
            r.deadline_errors.to_string(),
            r.degraded.to_string(),
            tablefmt::num(r.degraded_fraction() * 100.0, 1),
            tablefmt::num(r.mean_achieved_width(), 2),
            r.admission_widened.to_string(),
            r.violations.to_string(),
        ]);
        // Strict may refuse with the typed deadline error — anything else
        // fails the run. BestEffort must answer every query.
        total += r.violations + r.other_errors as usize;
        if r.policy == "best-effort" {
            total += r.deadline_errors as usize;
        }
    }
    println!("{title}");
    println!(
        "{}",
        tablefmt::render(
            &[
                "config",
                "clients",
                "wall ms",
                "qps",
                "p50 µs",
                "p99 µs",
                "errors",
                "ddl errs",
                "degraded",
                "degr %",
                "mean width",
                "adm widened",
                "violations",
            ],
            &rows,
        )
    );
    total
}

fn overload_json(r: &OverloadResult) -> Json {
    let mut sorted = r.latencies_us.clone();
    sorted.sort_by(|a, b| a.total_cmp(b));
    Json::obj([
        ("label", Json::str(r.label.clone())),
        ("policy", Json::str(r.policy)),
        ("transport", Json::str("channel")),
        ("clients", Json::Num(r.clients as f64)),
        ("deadline_ms", Json::Num(OVERLOAD_DEADLINE_MS)),
        ("wall_ms", Json::Num(r.wall.as_secs_f64() * 1e3)),
        ("qps", Json::Num(r.qps())),
        ("p50_us", Json::Num(percentile(&sorted, 0.5))),
        ("p99_us", Json::Num(percentile(&sorted, 0.99))),
        (
            "p99_within_deadline",
            Json::Bool(percentile(&sorted, 0.99) <= OVERLOAD_DEADLINE_MS * 1e3),
        ),
        ("queries", Json::Num(r.queries as f64)),
        ("errors", Json::Num(r.errors() as f64)),
        ("deadline_errors", Json::Num(r.deadline_errors as f64)),
        ("other_errors", Json::Num(r.other_errors as f64)),
        ("degraded", Json::Num(r.degraded as f64)),
        ("degraded_fraction", Json::Num(r.degraded_fraction())),
        ("mean_achieved_width", Json::Num(r.mean_achieved_width())),
        ("deadline_widened", Json::Num(r.deadline_widened as f64)),
        ("admission_widened", Json::Num(r.admission_widened as f64)),
        ("violations", Json::Num(r.violations as f64)),
    ])
}

fn build_tpch_service(
    w: &TpchWorkload,
    shards: usize,
    pool: Option<usize>,
    batch_join_rounds: bool,
) -> QueryService {
    let mut b = ServiceBuilder::new()
        .initial_width(1.0)
        .config(ServiceConfig {
            workers: CLIENTS,
            shards,
            coalesce: true,
            batch_refreshes: true,
            cache_views: true,
            batch_join_rounds,
            ..ServiceConfig::default()
        })
        // customer and orders co-partition on the customer key; lineitem
        // has no such column, so its rows hash-place by tuple id and
        // every orders ⋈ lineitem query scatters.
        .partition_by("custkey")
        .table(tpch::customer_table())
        .table(tpch::orders_table())
        .table(tpch::lineitem_table());
    for (name, rows) in [
        ("customer", &w.customer),
        ("orders", &w.orders),
        ("lineitem", &w.lineitem),
    ] {
        for r in rows {
            b = b.row(name, r.source, r.cells.clone());
        }
    }
    b.build_completion(LATENCY, pool)
        .expect("tpch service builds")
}

/// Per-query-class measurements across one tpch run.
#[derive(Default)]
struct ClassProfile {
    latencies_us: Vec<f64>,
    rounds: Vec<f64>,
    fetched: u64,
    violations: usize,
}

/// Serves one query and returns `(rounds, fetched, violations)`,
/// checking the reply against the query's exact ground truth.
fn serve_tpch_query(service: &QueryService, q: &tpch::TpchQuery) -> (usize, usize, usize) {
    let reply = service.query(&q.sql).expect("tpch query runs");
    let violations = match &q.truth {
        Truth::Scalar(_) => {
            let range = reply.result.answer.range;
            usize::from(
                tpch::scalar_violation(q, range.lo(), range.hi()) || !reply.result.satisfied,
            )
        }
        Truth::Groups(_) => {
            let served: Vec<(i64, f64, f64)> = reply
                .groups
                .iter()
                .filter_map(|g| match g.key.first() {
                    Some(Value::Int(k)) => {
                        Some((*k, g.result.answer.range.lo(), g.result.answer.range.hi()))
                    }
                    _ => None,
                })
                .collect();
            tpch::group_violations(q, &served)
                + reply.groups.iter().filter(|g| !g.result.satisfied).count()
        }
    };
    (
        reply.result.rounds,
        reply.result.refreshed.len(),
        violations,
    )
}

/// Runs the suite sequentially — the clock advances 1.0 before each
/// query, so every bound has re-widened to exactly the unit width the
/// generator sized its precision constraints against — and folds the
/// replies into per-class profiles.
fn run_tpch(w: &TpchWorkload, service: &QueryService) -> Vec<(TpchClass, ClassProfile)> {
    let mut profiles: Vec<(TpchClass, ClassProfile)> = TpchClass::ALL
        .iter()
        .map(|&c| (c, ClassProfile::default()))
        .collect();
    for q in &w.queries {
        service.advance_clock(1.0);
        let t0 = Instant::now();
        let (rounds, fetched, violations) = serve_tpch_query(service, q);
        let us = t0.elapsed().as_secs_f64() * 1e6;
        let p = &mut profiles
            .iter_mut()
            .find(|(c, _)| *c == q.class)
            .expect("all classes listed")
            .1;
        p.latencies_us.push(us);
        p.rounds.push(rounds as f64);
        p.fetched += fetched as u64;
        p.violations += violations;
    }
    profiles.retain(|(_, p)| !p.latencies_us.is_empty());
    profiles
}

/// Renders per-class profiles, returning the violation total.
fn render_tpch(title: &str, profiles: &[(TpchClass, ClassProfile)]) -> usize {
    let mut rows = Vec::new();
    let mut total = 0;
    for (class, p) in profiles {
        let mut lat = p.latencies_us.clone();
        lat.sort_by(|a, b| a.total_cmp(b));
        let mean_rounds = p.rounds.iter().sum::<f64>() / p.rounds.len() as f64;
        let max_rounds = p.rounds.iter().fold(0.0f64, |a, &r| a.max(r));
        rows.push(vec![
            class.label().to_string(),
            p.latencies_us.len().to_string(),
            tablefmt::num(mean_rounds, 1),
            tablefmt::num(max_rounds, 0),
            p.fetched.to_string(),
            tablefmt::num(percentile(&lat, 0.5), 0),
            tablefmt::num(percentile(&lat, 0.99), 0),
            p.violations.to_string(),
        ]);
        total += p.violations;
    }
    println!("{title}");
    println!(
        "{}",
        tablefmt::render(
            &[
                "class",
                "queries",
                "rounds avg",
                "rounds max",
                "fetched",
                "p50 µs",
                "p99 µs",
                "violations",
            ],
            &rows,
        )
    );
    total
}

fn tpch_profile_json(profiles: &[(TpchClass, ClassProfile)]) -> Json {
    Json::Arr(
        profiles
            .iter()
            .map(|(class, p)| {
                let mut lat = p.latencies_us.clone();
                lat.sort_by(|a, b| a.total_cmp(b));
                Json::obj([
                    ("class", Json::str(class.label())),
                    ("queries", Json::Num(p.latencies_us.len() as f64)),
                    (
                        "mean_rounds",
                        Json::Num(p.rounds.iter().sum::<f64>() / p.rounds.len() as f64),
                    ),
                    (
                        "max_rounds",
                        Json::Num(p.rounds.iter().fold(0.0f64, |a, &r| a.max(r))),
                    ),
                    ("fetched", Json::Num(p.fetched as f64)),
                    ("p50_us", Json::Num(percentile(&lat, 0.5))),
                    ("p99_us", Json::Num(percentile(&lat, 0.99))),
                    ("violations", Json::Num(p.violations as f64)),
                ])
            })
            .collect(),
    )
}

struct Cli {
    shards: Vec<usize>,
    sources: usize,
    pool: Option<usize>,
    rows: Vec<usize>,
    update_rate: u64,
    json: Option<String>,
    quick: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: service_throughput [--shards LIST] [--sources N] [--pool N|auto] \
         [--rows LIST] [--update-rate N] [--json PATH] [--quick]"
    );
    std::process::exit(2);
}

fn parse_cli() -> Cli {
    let mut cli = Cli {
        shards: vec![1, 2, 4, 8],
        sources: 64,
        // Adaptive by default: the service sizes its shared fetch pool
        // from available_parallelism × shard count; `--pool N` overrides.
        pool: None,
        rows: vec![1_000, 10_000, 50_000, 200_000],
        update_rate: 32,
        json: None,
        quick: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                usage()
            })
        };
        match arg.as_str() {
            "--shards" => {
                let spec = value("--shards");
                cli.shards = spec
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("invalid shard count {s:?}");
                            usage()
                        })
                    })
                    .collect();
                if cli.shards.is_empty() {
                    usage();
                }
                if cli.shards.len() == 1 && cli.shards[0] > 1 {
                    cli.shards.insert(0, 1);
                }
            }
            "--sources" => {
                cli.sources = value("--sources").parse().unwrap_or_else(|_| usage());
                if cli.sources == 0 {
                    usage();
                }
            }
            "--pool" => {
                let spec = value("--pool");
                cli.pool = if spec == "auto" {
                    // Adaptive sizing from available_parallelism × shards.
                    None
                } else {
                    Some(spec.parse().unwrap_or_else(|_| usage()))
                };
            }
            "--rows" => {
                let spec = value("--rows");
                cli.rows = spec
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("invalid row count {s:?}");
                            usage()
                        })
                    })
                    .collect();
                if cli.rows.is_empty() || cli.rows.contains(&0) {
                    usage();
                }
            }
            "--update-rate" => {
                cli.update_rate = value("--update-rate").parse().unwrap_or_else(|_| usage());
            }
            "--json" => cli.json = Some(value("--json")),
            "--quick" => cli.quick = true,
            other => {
                eprintln!("unknown argument {other:?}");
                usage()
            }
        }
    }
    if cli.quick {
        cli.shards = vec![1, 2];
        cli.sources = cli.sources.min(16);
        cli.update_rate = cli.update_rate.min(8);
        cli.rows = vec![512, 2048];
    }
    let largest = cli
        .rows
        .iter()
        .copied()
        .chain(tpch_tiers(cli.quick).iter().copied())
        .max()
        .unwrap_or(0);
    validate_rows_fit(largest as u64);
    cli
}

/// Rough resident bytes per workload row: the cached table row, its
/// master copy at a source, per-object subscription state, and headroom
/// for the transient per-round table slices scatter-gather copies.
const BYTES_PER_ROW: u64 = 1_500;

/// The row tiers part 7 walks.
fn tpch_tiers(quick: bool) -> &'static [usize] {
    if quick {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    }
}

/// Fails fast — with the math shown — when the requested row counts
/// cannot fit in the memory currently available, instead of letting the
/// kernel OOM-kill the run minutes in. Skipped silently where
/// `/proc/meminfo` is unreadable (non-Linux hosts).
fn validate_rows_fit(max_rows: u64) {
    let Some(available) = mem_available_bytes() else {
        return;
    };
    let needed = max_rows.saturating_mul(BYTES_PER_ROW);
    if needed > available / 5 * 4 {
        eprintln!(
            "--rows {max_rows} needs roughly {} MiB ({} bytes/row) but only {} MiB \
             are available; lower --rows or free memory",
            needed >> 20,
            BYTES_PER_ROW,
            available >> 20,
        );
        std::process::exit(2);
    }
}

/// `MemAvailable` from `/proc/meminfo`, in bytes.
fn mem_available_bytes() -> Option<u64> {
    let meminfo = std::fs::read_to_string("/proc/meminfo").ok()?;
    let line = meminfo
        .lines()
        .find_map(|l| l.strip_prefix("MemAvailable:"))?;
    let kb: u64 = line.trim().trim_end_matches("kB").trim().parse().ok()?;
    Some(kb * 1024)
}

fn main() {
    let cli = parse_cli();
    let max_shards = *cli.shards.iter().max().expect("non-empty shard list");
    let mut sections: Vec<Json> = Vec::new();
    let mut total_violations = 0;

    // Part 1: the traffic mechanisms on one shard (the PR-1 comparison).
    let config = LoadConfig {
        queries: if cli.quick { 96 } else { 256 },
        ..LoadConfig::default()
    };
    let w = loadgen::generate(&config);
    eprintln!(
        "workload: {} rows ({} groups × {}), {} sources, {} queries, zipf s={}, {} clients, {:?} RTT",
        w.rows.len(),
        config.groups,
        config.rows_per_group,
        config.sources,
        w.queries.len(),
        config.zipf_s,
        CLIENTS,
        LATENCY,
    );
    let single = |coalesce, batch_refreshes| ServiceConfig {
        workers: CLIENTS,
        shards: 1,
        coalesce,
        batch_refreshes,
        cache_views: true,
        batch_join_rounds: true,
        ..ServiceConfig::default()
    };
    let mechanisms = [
        run(
            "per-object (seed baseline)",
            &w,
            single(false, false),
            TransportKind::Channel,
            0,
        ),
        run(
            "batched",
            &w,
            single(false, true),
            TransportKind::Channel,
            0,
        ),
        run(
            "batched + coalesced",
            &w,
            single(true, true),
            TransportKind::Channel,
            0,
        ),
    ];
    total_violations += render("traffic mechanisms (1 shard):", &mechanisms);
    sections.push(Json::obj([
        ("title", Json::str("mechanisms")),
        ("runs", Json::Arr(mechanisms.iter().map(run_json).collect())),
    ]));

    // Part 2: shard scaling over the threaded transport (PR 2 curve).
    // More groups so every shard owns several, and a slice of group-free
    // queries to keep the scatter-gather merge path honest under load.
    let scale_config = LoadConfig {
        seed: 97,
        groups: 64,
        rows_per_group: 12,
        sources: 4,
        queries: if cli.quick { 256 } else { 1024 },
        global_fraction: 0.02,
        ..LoadConfig::default()
    };
    let sw = loadgen::generate(&scale_config);
    eprintln!(
        "\nscaling workload: {} rows ({} groups × {}), {} queries ({}% global)",
        sw.rows.len(),
        scale_config.groups,
        scale_config.rows_per_group,
        sw.queries.len(),
        (scale_config.global_fraction * 100.0) as u32,
    );
    let sharded = |shards| ServiceConfig {
        workers: CLIENTS,
        shards,
        coalesce: true,
        batch_refreshes: true,
        cache_views: true,
        batch_join_rounds: true,
        ..ServiceConfig::default()
    };
    let scaling: Vec<RunResult> = cli
        .shards
        .iter()
        .map(|&shards| {
            run(
                format!("{shards} shard{}", if shards == 1 { "" } else { "s" }),
                &sw,
                sharded(shards),
                TransportKind::Channel,
                0,
            )
        })
        .collect();
    println!();
    total_violations += render("shard scaling (batched + coalesced, channel):", &scaling);
    if let (Some(first), Some(last)) = (scaling.first(), scaling.last()) {
        if scaling.len() > 1 {
            println!(
                "throughput {} -> {}: {} -> {} qps ({}x)",
                first.label,
                last.label,
                tablefmt::num(first.qps(), 0),
                tablefmt::num(last.qps(), 0),
                tablefmt::num(last.qps() / first.qps(), 2),
            );
        }
    }
    sections.push(Json::obj([
        ("title", Json::str("shard_scaling")),
        ("runs", Json::Arr(scaling.iter().map(run_json).collect())),
    ]));

    // Part 3: transport duel at the largest shard count with many
    // sources — the regime where the threaded stack's per-source actor
    // threads and per-round scoped spawns dominate.
    // Flat popularity, uniformly tight constraints, and a real scatter
    // slice: every burst fans out to most sources on most shards, which
    // is exactly where per-source threads and per-round spawns hurt.
    let duel_config = LoadConfig {
        seed: 131,
        groups: 64,
        rows_per_group: (cli.sources / 16).max(4),
        sources: cli.sources,
        queries: if cli.quick { 192 } else { 1024 },
        zipf_s: 0.2,
        precision: vec![(0.5, 1)],
        global_fraction: 0.1,
        ..LoadConfig::default()
    };
    let dw = loadgen::generate(&duel_config);
    let pool_label = match cli.pool {
        Some(n) => n.to_string(),
        None => format!("auto:{}", trapp_server::default_fetch_pool_size(max_shards)),
    };
    eprintln!(
        "\nduel workload: {} rows, {} sources, {} shards, {} queries, pool={}",
        dw.rows.len(),
        duel_config.sources,
        max_shards,
        dw.queries.len(),
        pool_label,
    );
    let duel = [
        run(
            format!("channel ({} shards)", max_shards),
            &dw,
            sharded(max_shards),
            TransportKind::Channel,
            0,
        ),
        run(
            format!("completion ({} shards, pool={})", max_shards, pool_label),
            &dw,
            sharded(max_shards),
            TransportKind::Completion { pool: cli.pool },
            0,
        ),
    ];
    println!();
    total_violations += render(
        &format!(
            "transport duel ({} sources, {max_shards} shards):",
            duel_config.sources
        ),
        &duel,
    );
    println!(
        "transport duel: channel {} qps -> completion {} qps ({}x)",
        tablefmt::num(duel[0].qps(), 0),
        tablefmt::num(duel[1].qps(), 0),
        tablefmt::num(duel[1].qps() / duel[0].qps(), 2),
    );
    sections.push(Json::obj([
        ("title", Json::str("transport_duel")),
        ("sources", Json::Num(duel_config.sources as f64)),
        ("runs", Json::Arr(duel.iter().map(run_json).collect())),
    ]));

    // Part 4: the same duel workload under update churn — coalescing
    // invalidation and value-initiated refreshes race the query stream.
    if cli.update_rate > 0 {
        let churn = [
            run(
                "completion, read-only",
                &dw,
                sharded(max_shards),
                TransportKind::Completion { pool: cli.pool },
                0,
            ),
            run(
                format!("completion, {}/burst updates", cli.update_rate),
                &dw,
                sharded(max_shards),
                TransportKind::Completion { pool: cli.pool },
                cli.update_rate,
            ),
        ];
        println!();
        total_violations += render(
            &format!(
                "update churn ({} shards, {} updates/burst):",
                max_shards, cli.update_rate
            ),
            &churn,
        );
        sections.push(Json::obj([
            ("title", Json::str("churn")),
            ("update_rate", Json::Num(cli.update_rate as f64)),
            ("runs", Json::Arr(churn.iter().map(run_json).collect())),
        ]));
    }

    // Part 5: the full query surface — grouped + join slices over the
    // completion transport at 1 shard and at the largest shard count,
    // read-only and under batched update churn. Every grouped answer is
    // checked per group, every join answer against the join ground truth.
    let surface_config = LoadConfig {
        seed: 211,
        groups: 32,
        rows_per_group: 8,
        sources: cli.sources.min(16),
        queries: if cli.quick { 64 } else { 512 },
        global_fraction: 0.05,
        grouped_fraction: 0.15,
        join_fraction: 0.15,
        ..LoadConfig::default()
    };
    let qw = loadgen::generate(&surface_config);
    let n_grouped = qw
        .queries
        .iter()
        .filter(|q| q.shape == QueryShape::Grouped)
        .count();
    let n_join = qw
        .queries
        .iter()
        .filter(|q| q.shape == QueryShape::Join)
        .count();
    eprintln!(
        "\nquery-surface workload: {} rows + {} segments, {} queries \
         ({n_grouped} grouped, {n_join} join)",
        qw.rows.len(),
        qw.segments.len(),
        qw.queries.len(),
    );
    let surface = [
        run(
            "1 shard (completion)",
            &qw,
            sharded(1),
            TransportKind::Completion { pool: cli.pool },
            0,
        ),
        run(
            format!("{max_shards} shards (completion)"),
            &qw,
            sharded(max_shards),
            TransportKind::Completion { pool: cli.pool },
            0,
        ),
        run(
            format!("{max_shards} shards, {}/burst updates", cli.update_rate),
            &qw,
            sharded(max_shards),
            TransportKind::Completion { pool: cli.pool },
            cli.update_rate,
        ),
    ];
    println!();
    total_violations += render("query surface (grouped + join, completion):", &surface);
    sections.push(Json::obj([
        ("title", Json::str("query_surface")),
        ("grouped_queries", Json::Num(n_grouped as f64)),
        ("join_queries", Json::Num(n_join as f64)),
        ("runs", Json::Arr(surface.iter().map(run_json).collect())),
    ]));

    // Part 6: table scaling — full-scan planning (the seed hot path:
    // every plan pass rebuilds the classified input from a table scan)
    // vs the incremental band-view cache + indexed CHOOSE_REFRESH, at
    // growing row counts. Group size is held constant while the *number*
    // of groups scales, so per-query refresh work stays fixed and the
    // runs isolate exactly the per-pass rescan term the views remove;
    // zipfian popularity supplies the hot-group repetition a serving
    // deployment sees. Every answer is still ground-truth checked.
    let mut scaling_entries: Vec<Json> = Vec::new();
    for &rows in &cli.rows {
        let groups = rows.div_ceil(8).max(1);
        let scale_config = LoadConfig {
            seed: 307,
            groups,
            rows_per_group: 8,
            sources: 16,
            queries: if cli.quick { 64 } else { 240 },
            zipf_s: 1.6,
            global_fraction: 0.0,
            ..LoadConfig::default()
        };
        let tw = loadgen::generate(&scale_config);
        eprintln!(
            "\ntable-scaling workload: {} rows ({} groups × {}), {} queries",
            tw.rows.len(),
            groups,
            scale_config.rows_per_group,
            tw.queries.len(),
        );
        let planner = |cache_views| ServiceConfig {
            workers: CLIENTS,
            shards: 1,
            coalesce: true,
            batch_refreshes: true,
            cache_views,
            batch_join_rounds: true,
            ..ServiceConfig::default()
        };
        let pair = [
            run(
                format!("scan, {rows} rows"),
                &tw,
                planner(false),
                TransportKind::Completion { pool: cli.pool },
                0,
            ),
            run(
                format!("views, {rows} rows"),
                &tw,
                planner(true),
                TransportKind::Completion { pool: cli.pool },
                0,
            ),
        ];
        println!();
        total_violations += render(&format!("table scaling ({rows} rows):"), &pair);
        let speedup = pair[1].qps() / pair[0].qps().max(f64::MIN_POSITIVE);
        println!(
            "table scaling at {rows} rows: scan {} qps -> views {} qps ({}x)",
            tablefmt::num(pair[0].qps(), 0),
            tablefmt::num(pair[1].qps(), 0),
            tablefmt::num(speedup, 2),
        );
        scaling_entries.push(Json::obj([
            ("rows", Json::Num(tw.rows.len() as f64)),
            ("speedup", Json::Num(speedup)),
            ("scan", run_json(&pair[0])),
            ("views", run_json(&pair[1])),
        ]));
    }
    sections.push(Json::obj([
        ("title", Json::str("table_scaling")),
        ("entries", Json::Arr(scaling_entries)),
    ]));

    // Part 7: tpch scaling — the TPC-H-derived three-table suite at
    // growing row counts and shard counts, profiled per query class,
    // plus a batched vs one-tuple join-round duel at the smallest tier.
    let mut tpch_entries: Vec<Json> = Vec::new();
    let mut duel_entries: Vec<Json> = Vec::new();
    let tiers = tpch_tiers(cli.quick);
    let tpch_shard_counts: &[usize] = if cli.quick { &[1] } else { &[1, 8] };
    for &rows in tiers {
        let tconfig = tpch::TpchConfig {
            seed: 701,
            total_rows: rows,
            sources: 16,
            queries: if cli.quick { 12 } else { 24 },
            ..tpch::TpchConfig::default()
        };
        let tw = tpch::generate(&tconfig);
        eprintln!(
            "\ntpch workload: {} customer + {} orders + {} lineitem rows, {} queries",
            tw.customer.len(),
            tw.orders.len(),
            tw.lineitem.len(),
            tw.queries.len(),
        );
        for &shards in tpch_shard_counts {
            let service = build_tpch_service(&tw, shards, cli.pool, true);
            let profiles = run_tpch(&tw, &service);
            service.shutdown();
            println!();
            total_violations += render_tpch(
                &format!("tpch scaling ({rows} rows, {shards} shards):"),
                &profiles,
            );
            tpch_entries.push(Json::obj([
                ("rows", Json::Num(rows as f64)),
                ("shards", Json::Num(shards as f64)),
                ("profiles", tpch_profile_json(&profiles)),
            ]));
        }
    }
    // Join-round duel on a dedicated join-only workload, deliberately
    // smaller than the scaling tiers: the one-tuple baseline pays one
    // full planning round (a fresh hash join over every pair) per
    // refreshed tuple, so at the 100k+ tiers a single tight query would
    // take thousands of rounds — which is precisely the infeasibility
    // the batched planner removes, and the ratio below quantifies.
    {
        let duel_config = tpch::TpchConfig {
            seed: 702,
            total_rows: if cli.quick { 8_000 } else { 16_000 },
            sources: 16,
            queries: 16,
            class_weights: [0, 1, 0, 0],
            ..tpch::TpchConfig::default()
        };
        let tw = tpch::generate(&duel_config);
        let duel: Vec<&tpch::TpchQuery> = tw
            .queries
            .iter()
            .filter(|q| q.class == TpchClass::JoinAgg && q.pressure < 1.0)
            .take(if cli.quick { 2 } else { 3 })
            .collect();
        for q in duel {
            let batched_service = build_tpch_service(&tw, 1, cli.pool, true);
            batched_service.advance_clock(1.0);
            let (batched_rounds, batched_fetched, v1) = serve_tpch_query(&batched_service, q);
            batched_service.shutdown();
            let one_service = build_tpch_service(&tw, 1, cli.pool, false);
            one_service.advance_clock(1.0);
            let (one_rounds, one_fetched, v2) = serve_tpch_query(&one_service, q);
            one_service.shutdown();
            // The safe-prefix batch replays the one-tuple sequence,
            // so both modes fetch identical tuples; batching may
            // only collapse rounds.
            let consistent = batched_fetched == one_fetched && batched_rounds <= one_rounds;
            if !consistent {
                eprintln!("duel inconsistency on {}", q.sql);
                total_violations += 1;
            }
            total_violations += v1 + v2;
            println!(
                "join duel: {} rounds batched vs {} one-tuple ({} tuples) — {}",
                batched_rounds,
                one_rounds,
                one_fetched,
                &q.sql[..q.sql.find(" FROM").unwrap_or(q.sql.len())],
            );
            duel_entries.push(Json::obj([
                ("sql", Json::str(q.sql.clone())),
                ("within", Json::Num(q.within)),
                ("pressure", Json::Num(q.pressure)),
                ("batched_rounds", Json::Num(batched_rounds as f64)),
                ("one_tuple_rounds", Json::Num(one_rounds as f64)),
                ("fetched", Json::Num(one_fetched as f64)),
                ("consistent", Json::Bool(consistent)),
            ]));
        }
    }
    sections.push(Json::obj([
        ("title", Json::str("tpch_scaling")),
        ("entries", Json::Arr(tpch_entries)),
        ("join_round_duel", Json::Arr(duel_entries)),
    ]));

    // Part 8: availability — churn under a seeded chaos schedule (one of
    // the sources failing refresh ops with p = 0.2) plus a scripted
    // 500 ms hard outage of that source mid-run, best-effort on both
    // transport stacks.
    {
        let avail_config = LoadConfig {
            seed: 801,
            groups: 16,
            rows_per_group: 4,
            sources: 8,
            queries: if cli.quick { 96 } else { 256 },
            global_fraction: 0.3,
            ..LoadConfig::default()
        };
        let aw = loadgen::generate(&avail_config);
        let avail_shards = max_shards.min(4);
        eprintln!(
            "\navailability workload: {} rows, {} sources (source 1 flaky at p=0.2 + {:?} outage), \
             {} queries, {} shards, best-effort",
            aw.rows.len(),
            avail_config.sources,
            AVAIL_OUTAGE,
            aw.queries.len(),
            avail_shards,
        );
        let availability: Vec<AvailabilityResult> = [
            TransportKind::Channel,
            TransportKind::Completion { pool: cli.pool },
        ]
        .into_iter()
        .map(|transport| {
            run_availability(
                format!("{} best-effort", transport.name()),
                &aw,
                avail_shards,
                transport,
                cli.update_rate,
                cli.quick,
            )
        })
        .collect();
        println!();
        total_violations += render_availability("availability under faults:", &availability);
        sections.push(Json::obj([
            ("title", Json::str("availability")),
            ("fail_p", Json::Num(0.2)),
            ("outage_ms", Json::Num(AVAIL_OUTAGE.as_millis() as f64)),
            (
                "entries",
                Json::Arr(availability.iter().map(availability_json).collect()),
            ),
        ]));
    }

    // Part 9: overload — deadline-bounded queries against a slow source
    // at rising client counts, BestEffort across the whole ladder plus a
    // Strict run at 2× saturation.
    {
        let overload_config = LoadConfig {
            seed: 901,
            groups: 16,
            rows_per_group: 4,
            sources: 4,
            queries: if cli.quick { 96 } else { 256 },
            precision: vec![(0.5, 1)],
            deadline_fraction: 1.0,
            deadline_ms: OVERLOAD_DEADLINE_MS,
            ..LoadConfig::default()
        };
        let ow = loadgen::generate(&overload_config);
        // Saturation here is the worker pool: every query is group-pinned
        // to one shard and the slow source serializes its fetches, so
        // clients beyond the worker count only deepen the queue.
        let steps: &[usize] = if cli.quick {
            &[CLIENTS / 2, 2 * CLIENTS]
        } else {
            &[2, CLIENTS / 2, CLIENTS, 2 * CLIENTS]
        };
        let admission = trapp_server::AdmissionConfig {
            widen_watermark: 6,
            widen_factor: 4.0,
            ..trapp_server::AdmissionConfig::default()
        };
        eprintln!(
            "\noverload workload: {} rows, {} sources (source 1 slow by {:?}), {} queries, \
             DEADLINE {} ms, {} workers, clients {:?}",
            ow.rows.len(),
            overload_config.sources,
            OVERLOAD_DELAY,
            ow.queries.len(),
            OVERLOAD_DEADLINE_MS,
            CLIENTS,
            steps,
        );
        let mut overload: Vec<OverloadResult> = steps
            .iter()
            .map(|&clients| {
                run_overload(
                    format!("best-effort, {clients} clients"),
                    &ow,
                    clients,
                    DegradationPolicy::BestEffort,
                    admission,
                )
            })
            .collect();
        overload.push(run_overload(
            format!("strict, {} clients", 2 * CLIENTS),
            &ow,
            2 * CLIENTS,
            DegradationPolicy::Strict,
            trapp_server::AdmissionConfig::default(),
        ));
        println!();
        total_violations += render_overload("overload (deadline-bounded, slow source):", &overload);
        sections.push(Json::obj([
            ("title", Json::str("overload")),
            ("deadline_ms", Json::Num(OVERLOAD_DEADLINE_MS)),
            (
                "slow_source_delay_ms",
                Json::Num(OVERLOAD_DELAY.as_millis() as f64),
            ),
            ("workers", Json::Num(CLIENTS as f64)),
            (
                "entries",
                Json::Arr(overload.iter().map(overload_json).collect()),
            ),
        ]));
    }

    println!("bounded-answer violations: {total_violations}");

    if let Some(path) = &cli.json {
        let doc = Json::obj([
            ("bench", Json::str("service_throughput")),
            ("clients", Json::Num(CLIENTS as f64)),
            ("bursts", Json::Num(BURSTS as f64)),
            ("latency_us", Json::Num(LATENCY.as_micros() as f64)),
            ("quick", Json::Bool(cli.quick)),
            ("violations", Json::Num(total_violations as f64)),
            ("sections", Json::Arr(sections)),
        ]);
        std::fs::write(path, doc.render()).unwrap_or_else(|e| {
            eprintln!("cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("wrote {path}");
    }

    if total_violations > 0 {
        eprintln!("FAIL: some answers violated their precision contract");
        std::process::exit(1);
    }
}
