//! Throughput / latency / round-trip benchmark for the `trapp-server`
//! query service, in two parts:
//!
//! 1. **traffic mechanisms** (single shard): per-object baseline vs
//!    batched source round-trips vs batching + refresh coalescing;
//! 2. **shard scaling**: the same zipfian workload against 1/2/4/8 cache
//!    shards (`--shards 1,2,4,8`; a single value, e.g. `--shards 4`, runs
//!    that count against the 1-shard baseline). Group-pinned queries
//!    route to one shard each; a slice of group-free queries exercises
//!    the cross-shard scatter-gather + merge path.
//!
//! Eight closed-loop clients drive the service over `ChannelTransport`s
//! with simulated per-round-trip latency; the stream is split into bursts
//! with the clock advancing between bursts, so every burst's bounds have
//! re-widened and tight queries must refresh again. Within a burst, hot
//! groups overlap — the coalescing opportunity.
//!
//! Every answer is checked against ground truth computed from the master
//! values (`contains(truth) && width ≤ R`), so the speedup numbers can
//! never come at the cost of correctness; any violation fails the run.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use trapp_bench::tablefmt;
use trapp_server::{QueryService, ServiceBuilder, ServiceConfig};
use trapp_workload::loadgen::{self, LoadConfig, ServiceWorkload};

const CLIENTS: usize = 8;
const BURSTS: usize = 8;
const LATENCY: Duration = Duration::from_micros(200);

fn build_service(w: &ServiceWorkload, config: ServiceConfig) -> QueryService {
    let mut b = ServiceBuilder::new()
        .initial_width(1.0)
        .config(config)
        .partition_by("grp")
        .table(loadgen::table());
    for r in &w.rows {
        b = b.row("metrics", r.source, r.cells.clone());
    }
    b.build_channel(LATENCY).expect("service builds")
}

struct RunResult {
    label: String,
    wall: Duration,
    latencies_us: Vec<f64>,
    queries: u64,
    scattered: u64,
    round_trips: u64,
    forwarded: u64,
    coalesced: u64,
    violations: usize,
}

fn run(label: impl Into<String>, w: &ServiceWorkload, config: ServiceConfig) -> RunResult {
    let service = build_service(w, config);
    let latencies = Mutex::new(Vec::with_capacity(w.queries.len()));
    let violations = Mutex::new(0usize);
    let started = Instant::now();

    let burst_len = w.queries.len().div_ceil(BURSTS);
    for burst in w.queries.chunks(burst_len) {
        // Let every bound re-widen: this burst must pay for precision
        // again.
        service.advance_clock(25.0);
        let per_client = burst.len().div_ceil(CLIENTS);
        let (service, latencies, violations) = (&service, &latencies, &violations);
        std::thread::scope(|s| {
            for chunk in burst.chunks(per_client) {
                s.spawn(move || {
                    for q in chunk {
                        let t0 = Instant::now();
                        let reply = service.query(&q.sql).expect("query runs");
                        let us = t0.elapsed().as_secs_f64() * 1e6;
                        latencies.lock().unwrap().push(us);
                        let range = reply.result.answer.range;
                        let t = loadgen::ground_truth(w, q);
                        let contains = range.lo() - 1e-9 <= t && t <= range.hi() + 1e-9;
                        if !contains || !reply.result.satisfied {
                            *violations.lock().unwrap() += 1;
                        }
                    }
                });
            }
        });
    }

    let wall = started.elapsed();
    let stats = service.stats();
    service.shutdown();
    RunResult {
        label: label.into(),
        wall,
        latencies_us: latencies.into_inner().unwrap(),
        queries: stats.queries,
        scattered: stats.scatter_queries,
        round_trips: stats.round_trips,
        forwarded: stats.refreshes_forwarded,
        coalesced: stats.refreshes_coalesced,
        violations: violations.into_inner().unwrap(),
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn render(title: &str, runs: &[RunResult]) -> usize {
    let mut rows = Vec::new();
    let mut total_violations = 0;
    for r in runs {
        let mut sorted = r.latencies_us.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let qps = r.queries as f64 / r.wall.as_secs_f64();
        rows.push(vec![
            r.label.clone(),
            tablefmt::num(r.wall.as_secs_f64() * 1e3, 1),
            tablefmt::num(qps, 0),
            tablefmt::num(percentile(&sorted, 0.5), 0),
            tablefmt::num(percentile(&sorted, 0.95), 0),
            r.scattered.to_string(),
            r.round_trips.to_string(),
            tablefmt::num(r.round_trips as f64 / r.queries.max(1) as f64, 2),
            r.forwarded.to_string(),
            r.coalesced.to_string(),
            r.violations.to_string(),
        ]);
        total_violations += r.violations;
    }
    println!("{title}");
    println!(
        "{}",
        tablefmt::render(
            &[
                "config",
                "wall ms",
                "qps",
                "p50 µs",
                "p95 µs",
                "scattered",
                "round-trips",
                "rt/query",
                "refreshes",
                "coalesced",
                "violations",
            ],
            &rows,
        )
    );
    total_violations
}

/// Parses `--shards LIST` (comma-separated). A single value above 1 gets
/// the 1-shard baseline prepended so one invocation shows the comparison.
fn shard_counts() -> Vec<usize> {
    let mut args = std::env::args().skip(1);
    let mut list: Vec<usize> = vec![1, 2, 4, 8];
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                let spec = args.next().unwrap_or_else(|| {
                    eprintln!("--shards needs a value, e.g. --shards 4 or --shards 1,2,4,8");
                    std::process::exit(2);
                });
                list = spec
                    .split(',')
                    .map(|s| {
                        s.trim().parse().unwrap_or_else(|_| {
                            eprintln!("invalid shard count {s:?}");
                            std::process::exit(2);
                        })
                    })
                    .collect();
                if list.len() == 1 && list[0] > 1 {
                    list.insert(0, 1);
                }
            }
            other => {
                eprintln!("unknown argument {other:?}; supported: --shards LIST");
                std::process::exit(2);
            }
        }
    }
    list
}

fn main() {
    let shard_list = shard_counts();

    // Part 1: the traffic mechanisms on one shard (the PR-1 comparison).
    let config = LoadConfig::default();
    let w = loadgen::generate(&config);
    eprintln!(
        "workload: {} rows ({} groups × {}), {} sources, {} queries, zipf s={}, {} clients, {:?} RTT",
        w.rows.len(),
        config.groups,
        config.rows_per_group,
        config.sources,
        w.queries.len(),
        config.zipf_s,
        CLIENTS,
        LATENCY,
    );
    let mechanisms = [
        run(
            "per-object (seed baseline)",
            &w,
            ServiceConfig {
                workers: CLIENTS,
                shards: 1,
                coalesce: false,
                batch_refreshes: false,
            },
        ),
        run(
            "batched",
            &w,
            ServiceConfig {
                workers: CLIENTS,
                shards: 1,
                coalesce: false,
                batch_refreshes: true,
            },
        ),
        run(
            "batched + coalesced",
            &w,
            ServiceConfig {
                workers: CLIENTS,
                shards: 1,
                coalesce: true,
                batch_refreshes: true,
            },
        ),
    ];
    let mut total_violations = render("traffic mechanisms (1 shard):", &mechanisms);

    // Part 2: shard scaling. More groups so every shard owns several, and
    // a slice of group-free queries to keep the scatter-gather merge path
    // honest under load.
    let scale_config = LoadConfig {
        seed: 97,
        groups: 64,
        rows_per_group: 12,
        sources: 4,
        queries: 1024,
        global_fraction: 0.02,
        ..LoadConfig::default()
    };
    let sw = loadgen::generate(&scale_config);
    eprintln!(
        "\nscaling workload: {} rows ({} groups × {}), {} queries ({}% global)",
        sw.rows.len(),
        scale_config.groups,
        scale_config.rows_per_group,
        sw.queries.len(),
        (scale_config.global_fraction * 100.0) as u32,
    );
    let scaling: Vec<RunResult> = shard_list
        .iter()
        .map(|&shards| {
            run(
                format!("{shards} shard{}", if shards == 1 { "" } else { "s" }),
                &sw,
                ServiceConfig {
                    workers: CLIENTS,
                    shards,
                    coalesce: true,
                    batch_refreshes: true,
                },
            )
        })
        .collect();
    println!();
    total_violations += render("shard scaling (batched + coalesced):", &scaling);

    if let (Some(first), Some(last)) = (scaling.first(), scaling.last()) {
        if scaling.len() > 1 {
            let qps = |r: &RunResult| r.queries as f64 / r.wall.as_secs_f64();
            println!(
                "throughput {} -> {}: {} -> {} qps ({}x)",
                first.label,
                last.label,
                tablefmt::num(qps(first), 0),
                tablefmt::num(qps(last), 0),
                tablefmt::num(qps(last) / qps(first), 2),
            );
        }
    }
    println!("bounded-answer violations: {total_violations}");
    if total_violations > 0 {
        eprintln!("FAIL: some answers violated their precision contract");
        std::process::exit(1);
    }
}
