//! Throughput / latency / round-trip benchmark for the `trapp-server`
//! query service: per-object baseline vs batched source round-trips vs
//! batching + refresh coalescing, on the zipfian `loadgen` workload.
//!
//! Eight closed-loop clients drive the service over a `ChannelTransport`
//! with simulated per-round-trip latency; the stream is split into bursts
//! with the clock advancing between bursts, so every burst's bounds have
//! re-widened and tight queries must refresh again. Within a burst, hot
//! groups overlap — the coalescing opportunity.
//!
//! Every answer is checked against ground truth computed from the master
//! values (`contains(truth) && width ≤ R`), so the speedup numbers can
//! never come at the cost of correctness.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use trapp_bench::tablefmt;
use trapp_server::{QueryService, ServiceBuilder, ServiceConfig};
use trapp_workload::loadgen::{self, AggTemplate, GeneratedQuery, LoadConfig, ServiceWorkload};

const CLIENTS: usize = 8;
const BURSTS: usize = 8;
const LATENCY: Duration = Duration::from_micros(200);

fn build_service(w: &ServiceWorkload, config: ServiceConfig) -> QueryService {
    let mut b = ServiceBuilder::new()
        .initial_width(1.0)
        .config(config)
        .table(loadgen::table());
    for r in &w.rows {
        b = b.row("metrics", r.source, r.cells.clone());
    }
    b.build_channel(LATENCY).expect("service builds")
}

/// Ground truth for one query, from the master values in the row specs.
fn truth(w: &ServiceWorkload, q: &GeneratedQuery) -> f64 {
    let mid = (w.config.value_range.0 + w.config.value_range.1) / 2.0;
    let loads: Vec<f64> = w
        .rows
        .iter()
        .filter(|r| {
            matches!(&r.cells[0], trapp_types::BoundedValue::Exact(trapp_types::Value::Int(g))
                if *g == q.group as i64)
        })
        .map(|r| r.cells[1].as_interval().expect("load cell").midpoint())
        .collect();
    match q.agg {
        AggTemplate::Count => loads.iter().filter(|&&v| v > mid).count() as f64,
        AggTemplate::Sum => loads.iter().sum(),
        AggTemplate::Avg => loads.iter().sum::<f64>() / loads.len() as f64,
        AggTemplate::Min => loads.iter().fold(f64::INFINITY, |a, &b| a.min(b)),
    }
}

struct RunResult {
    label: &'static str,
    wall: Duration,
    latencies_us: Vec<f64>,
    queries: u64,
    round_trips: u64,
    forwarded: u64,
    coalesced: u64,
    violations: usize,
}

fn run(label: &'static str, w: &ServiceWorkload, config: ServiceConfig) -> RunResult {
    let service = build_service(w, config);
    let latencies = Mutex::new(Vec::with_capacity(w.queries.len()));
    let violations = Mutex::new(0usize);
    let started = Instant::now();

    let burst_len = w.queries.len().div_ceil(BURSTS);
    for burst in w.queries.chunks(burst_len) {
        // Let every bound re-widen: this burst must pay for precision
        // again.
        service.advance_clock(25.0);
        let per_client = burst.len().div_ceil(CLIENTS);
        let (service, latencies, violations) = (&service, &latencies, &violations);
        std::thread::scope(|s| {
            for chunk in burst.chunks(per_client) {
                s.spawn(move || {
                    for q in chunk {
                        let t0 = Instant::now();
                        let reply = service.query(&q.sql).expect("query runs");
                        let us = t0.elapsed().as_secs_f64() * 1e6;
                        latencies.lock().unwrap().push(us);
                        let range = reply.result.answer.range;
                        let t = truth(w, q);
                        let contains = range.lo() - 1e-9 <= t && t <= range.hi() + 1e-9;
                        if !contains || !reply.result.satisfied {
                            *violations.lock().unwrap() += 1;
                        }
                    }
                });
            }
        });
    }

    let wall = started.elapsed();
    let stats = service.stats();
    service.shutdown();
    RunResult {
        label,
        wall,
        latencies_us: latencies.into_inner().unwrap(),
        queries: stats.queries,
        round_trips: stats.round_trips,
        forwarded: stats.refreshes_forwarded,
        coalesced: stats.refreshes_coalesced,
        violations: violations.into_inner().unwrap(),
    }
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() - 1) as f64 * p).round() as usize;
    sorted[idx]
}

fn main() {
    let config = LoadConfig::default();
    let w = loadgen::generate(&config);
    eprintln!(
        "workload: {} rows ({} groups × {}), {} sources, {} queries, zipf s={}, {} clients, {:?} RTT",
        w.rows.len(),
        config.groups,
        config.rows_per_group,
        config.sources,
        w.queries.len(),
        config.zipf_s,
        CLIENTS,
        LATENCY,
    );

    let runs = [
        run(
            "per-object (seed baseline)",
            &w,
            ServiceConfig {
                workers: CLIENTS,
                coalesce: false,
                batch_refreshes: false,
            },
        ),
        run(
            "batched",
            &w,
            ServiceConfig {
                workers: CLIENTS,
                coalesce: false,
                batch_refreshes: true,
            },
        ),
        run(
            "batched + coalesced",
            &w,
            ServiceConfig {
                workers: CLIENTS,
                coalesce: true,
                batch_refreshes: true,
            },
        ),
    ];

    let mut rows = Vec::new();
    let mut total_violations = 0;
    for r in &runs {
        let mut sorted = r.latencies_us.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let qps = r.queries as f64 / r.wall.as_secs_f64();
        rows.push(vec![
            r.label.to_string(),
            tablefmt::num(r.wall.as_secs_f64() * 1e3, 1),
            tablefmt::num(qps, 0),
            tablefmt::num(percentile(&sorted, 0.5), 0),
            tablefmt::num(percentile(&sorted, 0.95), 0),
            r.round_trips.to_string(),
            tablefmt::num(r.round_trips as f64 / r.queries as f64, 2),
            r.forwarded.to_string(),
            r.coalesced.to_string(),
        ]);
        total_violations += r.violations;
    }
    println!(
        "{}",
        tablefmt::render(
            &[
                "config",
                "wall ms",
                "qps",
                "p50 µs",
                "p95 µs",
                "round-trips",
                "rt/query",
                "refreshes",
                "coalesced",
            ],
            &rows,
        )
    );

    let baseline = &runs[0];
    let best = &runs[2];
    println!(
        "round-trips per query: {} -> {} ({}x reduction); bounded-answer violations: {}",
        tablefmt::num(baseline.round_trips as f64 / baseline.queries as f64, 2),
        tablefmt::num(best.round_trips as f64 / best.queries as f64, 2),
        tablefmt::num(
            baseline.round_trips as f64 / best.round_trips.max(1) as f64,
            1
        ),
        total_violations,
    );
    if total_violations > 0 {
        eprintln!("FAIL: some answers violated their precision contract");
        std::process::exit(1);
    }
}
