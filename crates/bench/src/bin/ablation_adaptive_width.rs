//! ABL-2 (Appendix A): sensitivity of the adaptive width-parameter
//! controller to its starting point, under a mixed update/query load.
//!
//! A too-narrow bound causes value-initiated refreshes on every escape; a
//! too-wide one forces queries to pull refreshes. The adaptive controller
//! (×2 on escape, ×0.7 on query pull — `AdaptiveWidth::with_defaults`)
//! should converge to a workload-appropriate width from any starting
//! point, so total refreshes should be similar across wildly different
//! initial widths.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trapp_bench::tablefmt::{num, render};
use trapp_storage::{ColumnDef, Schema, Table};
use trapp_types::{BoundedValue, ObjectId, SourceId, Value, ValueType};

/// Runs 400 ticks of ±1 random-walk updates on 20 objects with a
/// `SUM WITHIN 40` query every 10 ticks; returns the refresh counts.
fn run_scenario(initial_width: f64) -> (u64, u64) {
    let mut sim = trapp_system::Simulation::builder()
        .initial_width(initial_width)
        .build()
        .expect("sim");
    sim.add_source(SourceId::new(1));
    let schema = Schema::new(vec![
        ColumnDef::exact("name", ValueType::Str),
        ColumnDef::bounded_float("metric"),
    ])
    .expect("schema");
    sim.add_table(Table::new("metrics", schema)).expect("table");

    let n = 20usize;
    let mut values: Vec<f64> = (0..n).map(|i| 100.0 + i as f64).collect();
    for (i, v) in values.iter().enumerate() {
        sim.add_row(
            "metrics",
            SourceId::new(1),
            vec![
                BoundedValue::Exact(Value::Str(format!("m{i}"))),
                BoundedValue::exact_f64(*v).expect("value"),
            ],
        )
        .expect("row");
    }

    let mut rng = StdRng::seed_from_u64(99);
    for tick in 1..=400u64 {
        sim.clock.advance(1.0);
        for (i, v) in values.iter_mut().enumerate() {
            *v += rng.gen_range(-1.0..=1.0);
            sim.apply_update(ObjectId::new(i as u64 + 1), *v)
                .expect("update");
        }
        if tick % 10 == 0 {
            sim.run_query("SELECT SUM(metric) WITHIN 40 FROM metrics")
                .expect("query");
        }
    }
    let stats = sim.stats();
    (stats.value_initiated, stats.query_initiated)
}

fn main() {
    println!("== ABL-2: adaptive width control (Appendix A) ==\n");
    println!("workload: 20 objects, ±1 random-walk updates per tick, 400 ticks,");
    println!("SUM WITHIN 40 query every 10 ticks; widths adapt ×2 on escape, ×0.7 on pull\n");

    let mut rows = Vec::new();
    let mut totals = Vec::new();
    for w0 in [0.05, 0.2, 1.0, 5.0, 25.0] {
        let (vi, qi) = run_scenario(w0);
        totals.push(vi + qi);
        rows.push(vec![
            num(w0, 2),
            vi.to_string(),
            qi.to_string(),
            (vi + qi).to_string(),
        ]);
    }
    println!(
        "{}",
        render(
            &[
                "initial W",
                "value-initiated",
                "query-initiated",
                "total refreshes"
            ],
            &rows
        )
    );
    let max = *totals.iter().max().expect("nonempty") as f64;
    let min = *totals.iter().min().expect("nonempty") as f64;
    println!(
        "\nreading: across a 500x range of starting widths, total refreshes vary only {:.1}x —",
        max / min.max(1.0)
    );
    println!("the controller finds the workload's middle ground (Appendix A's goal).");
}
