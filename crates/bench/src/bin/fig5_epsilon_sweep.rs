//! Figure 5: CHOOSE_REFRESH_SUM time and total refresh cost for varying ε.
//!
//! Paper setup (§5.2.1): 90 stock prices, day high/low as bounds, close as
//! the precise value, costs uniform integers 1..=10, R = 100 fixed, ε swept
//! downward from 0.1.
//!
//! Expected *shape* (the substrate differs — see DESIGN.md): planning time
//! grows roughly quadratically as ε decreases (the O((3/ε)²·n) term),
//! while total refresh cost decreases only slightly; the paper's
//! conclusion is that ε below 0.1 is rarely worth it.

use trapp_bench::experiments::fig5_sweep;
use trapp_bench::tablefmt::{num, render};
use trapp_core::agg::Aggregate;
use trapp_core::refresh::{choose_refresh, SolverStrategy};
use trapp_workload::stocks::StockConfig;

fn main() {
    let config = StockConfig::default(); // 90 symbols, seed 42
    let r = 100.0;
    let epsilons = [0.1, 0.08, 0.06, 0.05, 0.04, 0.03, 0.02, 0.01];

    let rows = fig5_sweep(&config, r, &epsilons, 5).expect("sweep");

    // Exact optimum as the reference line.
    let input = trapp_bench::experiments::stock_input(&config).expect("input");
    let exact = choose_refresh(Aggregate::Sum, &input, r, SolverStrategy::Exact).expect("exact");

    println!("== Figure 5: CHOOSE_REFRESH_SUM time and refresh cost vs ε ==");
    println!(
        "(90 synthetic stocks, R = {r}, seed {}; exact optimum cost = {})\n",
        config.seed,
        num(exact.planned_cost, 1)
    );
    let table: Vec<Vec<String>> = rows
        .iter()
        .map(|row| {
            vec![
                num(row.epsilon, 2),
                format!("{:.3}", row.choose_refresh_secs * 1e3),
                num(row.refresh_cost, 1),
                num(row.refresh_cost / exact.planned_cost, 4),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &[
                "epsilon",
                "choose_refresh (ms)",
                "refresh cost",
                "cost / optimal"
            ],
            &table
        )
    );
    println!(
        "shape check: time({}) / time({}) = {:.1}x (paper: quadratic growth as ε shrinks)",
        epsilons.last().unwrap(),
        epsilons.first().unwrap(),
        rows.last().unwrap().choose_refresh_secs / rows[0].choose_refresh_secs.max(1e-12)
    );
}
