//! Figure 7: classification of the Figure 2 tuples into T−, T?, T+ for
//! three selection predicates, before and after refreshing the exact
//! values.

use trapp_bench::tablefmt::render;
use trapp_expr::{classify_table, Band, Expr};
use trapp_sql::parse_query;
use trapp_types::TupleId;
use trapp_workload::figure2::{links_table, master_table};

const PREDICATES: [(&str, &str); 3] = [
    ("(bandwidth > 50) AND (latency < 10)", "bw>50 AND lat<10"),
    ("latency > 10", "latency > 10"),
    ("traffic > 100", "traffic > 100"),
];

fn main() {
    println!("== Figure 7: tuple classification before and after refresh ==\n");

    let cache = links_table();
    let master = master_table();

    let mut headers: Vec<String> = vec!["link".into()];
    for (_, short) in PREDICATES {
        headers.push(format!("{short} (before)"));
        headers.push(format!("{short} (after)"));
    }
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();

    let mut columns: Vec<Vec<Band>> = Vec::new();
    for (sql_pred, _) in PREDICATES {
        let query = parse_query(&format!("SELECT COUNT(*) FROM links WHERE {sql_pred}"))
            .expect("predicate parses");
        let pred: Expr<usize> = query
            .predicate
            .expect("has predicate")
            .bind(cache.schema())
            .expect("binds");
        for table in [&cache, &master] {
            let c = classify_table(table, Some(&pred)).expect("classifies");
            let mut bands = vec![Band::Minus; table.len()];
            for tid in &c.plus {
                bands[tid.raw() as usize - 1] = Band::Plus;
            }
            for tid in &c.question {
                bands[tid.raw() as usize - 1] = Band::Question;
            }
            columns.push(bands);
        }
    }

    let label = |b: Band| match b {
        Band::Plus => "T+",
        Band::Question => "T?",
        Band::Minus => "T-",
    };
    let mut rows = Vec::new();
    for i in 0..cache.len() {
        let mut row = vec![(i + 1).to_string()];
        // Column order: for each predicate, before then after.
        for cols in columns.chunks(2) {
            row.push(label(cols[0][i]).to_string());
            row.push(label(cols[1][i]).to_string());
        }
        rows.push(row);
    }
    println!("{}", render(&header_refs, &rows));

    // Paper check: after refresh there must be no T? anywhere.
    let residual_question: usize = columns
        .iter()
        .skip(1)
        .step_by(2)
        .flat_map(|c| c.iter())
        .filter(|b| **b == Band::Question)
        .count();
    println!(
        "after-refresh T? count: {residual_question} (paper: 0 — exact values classify definitely)"
    );
    let _ = TupleId::new(1);
}
