//! ABL-1 (§8.2): batch CHOOSE_REFRESH vs iterative/online refresh.
//!
//! Batch plans must guarantee the constraint for *any* realization, so they
//! over-provision; iterative refreshing observes actual values and can stop
//! early — at the price of one round-trip per refresh. This ablation
//! measures refresh cost and rounds for both modes across a sweep of R.

use trapp_bench::tablefmt::{num, render};
use trapp_core::executor::ExecutionMode;
use trapp_core::refresh::iterative::IterativeHeuristic;
use trapp_core::{QuerySession, SolverStrategy, TableOracle};
use trapp_workload::stocks::{build_tables, generate, StockConfig};

fn main() {
    let config = StockConfig::default();
    let days = generate(&config);

    println!("== ABL-1: batch vs iterative CHOOSE_REFRESH (SUM over 90 stocks) ==\n");
    let input = trapp_bench::experiments::stock_input(&config).expect("input");
    let total_width: f64 = input.items.iter().map(|i| i.interval.width()).sum();

    let run = |sql: &str, mode: ExecutionMode| {
        let (cache, master) = build_tables(&days);
        let mut s = QuerySession::new(cache);
        s.config.strategy = SolverStrategy::Exact;
        s.config.mode = mode;
        let mut o = TableOracle::from_table(master);
        let res = s.execute_sql(sql, &mut o).expect("query");
        assert!(res.satisfied);
        (res.refresh_cost, res.refreshed.len(), res.rounds)
    };

    let mut rows = Vec::new();
    for frac in [0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8] {
        let r = total_width * frac;
        let sql = format!("SELECT SUM(price) WITHIN {r} FROM stocks");
        let (batch_cost, batch_n, _) = run(&sql, ExecutionMode::Batch);
        let (iter_cost, iter_n, iter_rounds) = run(
            &sql,
            ExecutionMode::Iterative(IterativeHeuristic::BestRatio),
        );
        rows.push(vec![
            num(r, 1),
            num(batch_cost, 0),
            batch_n.to_string(),
            num(iter_cost, 0),
            iter_n.to_string(),
            iter_rounds.to_string(),
            num(iter_cost / batch_cost.max(1e-9), 3),
        ]);
    }
    println!(
        "{}",
        render(
            &[
                "R",
                "batch cost",
                "batch refreshes",
                "iter cost",
                "iter refreshes",
                "iter rounds",
                "iter/batch cost"
            ],
            &rows
        )
    );
    println!("\nreading (SUM): after refreshing a set S, the answer width is exactly the sum of");
    println!("the unrefreshed widths — independent of the realized values — so iterative SUM");
    println!("cannot beat the optimal batch knapsack; its greedy ordering costs a few percent.");

    // MIN is different: refreshing can *lower* the guaranteed upper bound
    // min(Hk), shrinking the batch rule's refresh set mid-flight. Iterative
    // exploits the actual values and can stop well before the batch plan.
    // Stocks rarely overlap near the minimum, so this part uses a crowded
    // workload: 60 tuples whose bounds all overlap the minimum region.
    println!("\n-- MIN(x) WITHIN r, 60 overlapping bounds: iterative can stop early --\n");
    let (min_cache, min_master) = overlapping_min_tables(60, 77);
    let run_min = |sql: &str, mode: ExecutionMode| {
        let mut s = QuerySession::new(clone_table(&min_cache));
        s.config.strategy = SolverStrategy::Exact;
        s.config.mode = mode;
        let mut o = TableOracle::from_table(clone_table(&min_master));
        let res = s.execute_sql(sql, &mut o).expect("query");
        assert!(res.satisfied);
        (res.refresh_cost, res.refreshed.len(), res.rounds)
    };
    let mut rows = Vec::new();
    for r in [1.0, 2.0, 4.0, 8.0, 12.0] {
        let sql = format!("SELECT MIN(x) WITHIN {r} FROM overlap");
        let (batch_cost, batch_n, _) = run_min(&sql, ExecutionMode::Batch);
        let (iter_cost, iter_n, iter_rounds) = run_min(
            &sql,
            ExecutionMode::Iterative(IterativeHeuristic::BestRatio),
        );
        rows.push(vec![
            num(r, 1),
            num(batch_cost, 0),
            batch_n.to_string(),
            num(iter_cost, 0),
            iter_n.to_string(),
            iter_rounds.to_string(),
            num(iter_cost / batch_cost.max(1e-9), 3),
        ]);
    }
    println!(
        "{}",
        render(
            &[
                "R",
                "batch cost",
                "batch refreshes",
                "iter cost",
                "iter refreshes",
                "iter rounds",
                "iter/batch cost"
            ],
            &rows
        )
    );
    println!("\nreading (MIN): each refresh realizes an exact value that can lower min(H) and");
    println!("shrink the remaining blocking set — iterative pays for refreshes only while the");
    println!("constraint is actually unmet (§8.2's 'in which contexts is iterative preferable').");
}

/// 60 tuples with bounds `[low, low + width]` whose low endpoints crowd the
/// interval [0, 10] — many tuples block a tight MIN constraint, but the
/// realized minimum usually unblocks most of them.
fn overlapping_min_tables(n: usize, seed: u64) -> (trapp_storage::Table, trapp_storage::Table) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use trapp_storage::{ColumnDef, Schema, Table};
    use trapp_types::{BoundedValue, Value, ValueType};

    let mut rng = StdRng::seed_from_u64(seed);
    let schema = Schema::new(vec![
        ColumnDef::exact("id", ValueType::Int),
        ColumnDef::bounded_float("x"),
    ])
    .expect("schema");
    let mut cache = Table::new("overlap", schema.clone());
    let mut master = Table::new("overlap", schema);
    for i in 0..n {
        let low = rng.gen_range(0.0..10.0);
        let width = rng.gen_range(5.0..15.0);
        let value = rng.gen_range(low..=(low + width));
        let cost = rng.gen_range(1..=10) as f64;
        cache
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(i as i64)),
                    BoundedValue::bounded(low, low + width).expect("bound"),
                ],
                cost,
            )
            .expect("row");
        master
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(i as i64)),
                    BoundedValue::exact_f64(value).expect("value"),
                ],
                cost,
            )
            .expect("row");
    }
    (cache, master)
}

/// Deep-copies a table (tables are not `Clone`; rebuilt row by row).
fn clone_table(t: &trapp_storage::Table) -> trapp_storage::Table {
    let mut out = trapp_storage::Table::new(t.name(), t.schema().clone());
    for (tid, row) in t.scan() {
        let new = out
            .insert_with_cost(row.cells().to_vec(), t.cost(tid).expect("cost"))
            .expect("row");
        assert_eq!(new, tid);
    }
    out
}
