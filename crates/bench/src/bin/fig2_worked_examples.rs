//! Figure 2 + worked examples Q1–Q6: prints the paper's sample table
//! (including the knapsack weight columns W, W′, W″) and replays every
//! worked example end-to-end, reporting paper-expected vs measured.

use trapp_bench::tablefmt::{num, render};
use trapp_core::agg::sum::sum_weight;
use trapp_core::agg::AggInput;
use trapp_core::{QuerySession, SolverStrategy, TableOracle};
use trapp_expr::{Band, BinaryOp, ColumnRef, Expr};
use trapp_types::Value;
use trapp_workload::figure2::{self, links_table, master_table, worked_examples};

fn main() {
    println!("== Figure 2: sample data for the network monitoring example ==\n");
    print_figure2_table();
    println!("\n== Worked examples Q1-Q6 (paper-expected vs measured) ==\n");
    run_worked_examples();
}

fn print_figure2_table() {
    let cache = links_table();

    // Weight columns: W (Q2: SUM latency over path tuples, §5.2),
    // W′ (Q3: AVG traffic, §5.4), W″ (Q6: AVG latency WHERE traffic>100,
    // Appendix F).
    let schema = figure2::schema();
    let latency = Expr::Column(ColumnRef::bare("latency"))
        .bind(&schema)
        .unwrap();
    let traffic = Expr::Column(ColumnRef::bare("traffic"))
        .bind(&schema)
        .unwrap();
    let on_path = Expr::binary(
        BinaryOp::Eq,
        Expr::Column(ColumnRef::bare("on_path")),
        Expr::Literal(Value::Bool(true)),
    )
    .bind(&schema)
    .unwrap();
    let traffic_gt_100 = Expr::binary(
        BinaryOp::Gt,
        Expr::Column(ColumnRef::bare("traffic")),
        Expr::Literal(Value::Float(100.0)),
    )
    .bind(&schema)
    .unwrap();

    let w_input = AggInput::build(&cache, Some(&on_path), Some(&latency)).unwrap();
    let wp_input = AggInput::build(&cache, None, Some(&traffic)).unwrap();
    let wpp_input = AggInput::build(&cache, Some(&traffic_gt_100), Some(&latency)).unwrap();

    // Q6 slope (Appendix F): max(H'S, -L'S, H'S-L'S)/L'C - R with R = 2.
    let sum = trapp_core::agg::sum::bounded_sum(&wpp_input);
    let l_count = wpp_input.plus_count() as f64;
    let slope = sum.hi().max(-sum.lo()).max(sum.width()) / l_count - 2.0;

    let lookup = |input: &AggInput, tid: u64| -> Option<f64> {
        input
            .items
            .iter()
            .find(|i| i.tid.raw() == tid)
            .map(sum_weight)
    };
    let lookup_wpp = |tid: u64| -> Option<f64> {
        wpp_input
            .items
            .iter()
            .find(|i| i.tid.raw() == tid)
            .map(|i| sum_weight(i) + if i.band == Band::Question { slope } else { 0.0 })
    };

    let mut rows = Vec::new();
    for (i, (from, to, lat, bw, tr, cost, _)) in figure2::ROWS.into_iter().enumerate() {
        let tid = i as u64 + 1;
        let (plat, pbw, ptr) = figure2::PRECISE[i];
        rows.push(vec![
            tid.to_string(),
            format!("N{from}"),
            format!("N{to}"),
            format!("[{}, {}]", lat.0, lat.1),
            num(plat, 0),
            format!("[{}, {}]", bw.0, bw.1),
            num(pbw, 0),
            format!("[{}, {}]", tr.0, tr.1),
            num(ptr, 0),
            num(cost, 0),
            lookup(&w_input, tid).map(|w| num(w, 0)).unwrap_or_default(),
            lookup(&wp_input, tid)
                .map(|w| num(w, 0))
                .unwrap_or_default(),
            lookup_wpp(tid).map(|w| num(w, 1)).unwrap_or_default(),
        ]);
    }
    println!(
        "{}",
        render(
            &[
                "link",
                "from",
                "to",
                "lat cached",
                "lat V",
                "bw cached",
                "bw V",
                "traffic cached",
                "traffic V",
                "cost",
                "W",
                "W'",
                "W''"
            ],
            &rows
        )
    );
    println!("W   = knapsack weights for Q2 (SUM latency over the path, R=5; blank = off-path)");
    println!("W'  = knapsack weights for Q3 (AVG traffic, R=10)");
    println!("W'' = knapsack weights for Q6 (AVG latency WHERE traffic > 100, R=2)");
}

fn run_worked_examples() {
    let mut rows = Vec::new();
    for ex in worked_examples() {
        let mut session = QuerySession::new(links_table());
        session.config.strategy = SolverStrategy::Exact;
        let mut oracle = TableOracle::from_table(master_table());
        let r = session.execute_sql(ex.sql, &mut oracle).unwrap();
        let refreshed: Vec<String> = r
            .refreshed
            .iter()
            .map(|(_, t)| t.raw().to_string())
            .collect();
        rows.push(vec![
            ex.id.to_string(),
            format!(
                "[{}, {}]",
                num(ex.expect_initial.0, 1),
                num(ex.expect_initial.1, 1)
            ),
            format!(
                "[{}, {}]",
                num(r.initial_answer.range.lo(), 1),
                num(r.initial_answer.range.hi(), 1)
            ),
            format!(
                "[{}, {}]",
                num(ex.expect_final.0, 1),
                num(ex.expect_final.1, 1)
            ),
            format!(
                "[{}, {}]",
                num(r.answer.range.lo(), 1),
                num(r.answer.range.hi(), 1)
            ),
            format!("{{{}}}", refreshed.join(",")),
            num(r.refresh_cost, 0),
            if r.satisfied {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    println!(
        "{}",
        render(
            &[
                "query",
                "paper initial",
                "measured initial",
                "paper final",
                "measured final",
                "refreshed",
                "cost",
                "ok"
            ],
            &rows
        )
    );
    for ex in worked_examples() {
        println!("{}: {} — {}", ex.id, ex.description, ex.sql);
    }
}
