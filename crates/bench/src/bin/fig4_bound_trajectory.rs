//! Figure 4: a bound `[L(T), H(T)]` over time, overlaid with the precise
//! value `V(T)` — showing the √t growth, a query-initiated refresh (bound
//! collapses to a point, width parameter narrows), and a value-initiated
//! refresh (the value escapes, bound re-centers and widens).
//!
//! Prints the series as CSV-ish columns plus an ASCII strip chart.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trapp_bench::tablefmt::{num, render};
use trapp_bounds::BoundShape;
use trapp_system::{Refresh, RefreshKind, SimClock, Source};
use trapp_types::{CacheId, ObjectId, SourceId};

fn main() {
    println!("== Figure 4: bound [L(T), H(T)] over time vs precise value V(T) ==\n");

    let clock = SimClock::new();
    let mut source = Source::new(SourceId::new(1), BoundShape::Sqrt);
    let object = ObjectId::new(1);
    let cache = CacheId::new(1);
    source.register_object(object, 100.0).expect("register");
    let mut bound = source
        .subscribe(cache, object, 1.2, clock.now())
        .expect("subscribe")
        .bound;

    let mut rng = StdRng::seed_from_u64(11);
    let mut value = 100.0;
    let mut rows = Vec::new();
    let mut events: Vec<(f64, &'static str)> = Vec::new();

    for step in 0..=120 {
        let t = step as f64 * 0.5;
        clock.advance_to(t);
        // Random-walk update (the Appendix A model).
        if step > 0 {
            value += rng.gen_range(-1.0..=1.0);
            let refreshes = source.apply_update(object, value, t).expect("update");
            for (_, r) in refreshes {
                bound = r.bound;
                events.push((t, "value-initiated refresh"));
            }
        }
        // A scheduled query at t = 40 pulls a query-initiated refresh.
        if step == 80 {
            let r: Refresh = source.serve_refresh(cache, object, t).expect("refresh");
            assert_eq!(r.kind, RefreshKind::QueryInitiated);
            bound = r.bound;
            events.push((t, "query-initiated refresh"));
        }

        if step % 4 == 0 {
            let iv = bound.interval_at(t);
            let chart = strip_chart(iv.lo(), value, iv.hi(), 92.0, 112.0);
            rows.push(vec![
                num(t, 1),
                num(iv.lo(), 2),
                num(value, 2),
                num(iv.hi(), 2),
                num(iv.width(), 2),
                chart,
            ]);
        }
    }

    println!(
        "{}",
        render(&["t", "L(t)", "V(t)", "H(t)", "width", "L ~ V ~ H"], &rows)
    );
    println!("events:");
    for (t, what) in events {
        println!("  t = {t:>5.1}: {what}");
    }
    println!("\nshape check: width grows like sqrt(t - t_refresh); refreshes collapse it to 0.");
}

/// A fixed-scale ASCII strip: `[`, `*` for the value, `]` for the bound.
fn strip_chart(lo: f64, v: f64, hi: f64, min: f64, max: f64) -> String {
    let cols = 48usize;
    let pos = |x: f64| -> usize {
        (((x - min) / (max - min)).clamp(0.0, 1.0) * (cols - 1) as f64).round() as usize
    };
    let mut chart = vec![b' '; cols];
    chart[pos(lo)] = b'[';
    chart[pos(hi)] = b']';
    let vp = pos(v);
    chart[vp] = if chart[vp] == b' ' { b'*' } else { b'#' };
    String::from_utf8(chart).expect("ascii")
}
