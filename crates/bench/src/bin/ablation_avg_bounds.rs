//! ABL-5 (§6.4.1): tight (Appendix E) vs loose (linear-time) AVG bounds.
//!
//! The paper's Q6 example shows the tight bound [5, 11.3] against the loose
//! [2.3, 27.5]. This ablation quantifies the gap across predicate
//! selectivities on the network-monitoring workload: how much width the
//! O(n log n) computation saves, i.e. how often it answers from cache where
//! the loose bound would have forced refreshes.

use trapp_bench::tablefmt::{num, render};
use trapp_core::agg::avg::{bounded_avg_loose, bounded_avg_tight};
use trapp_core::agg::AggInput;
use trapp_expr::{BinaryOp, ColumnRef, Expr};
use trapp_types::Value;
use trapp_workload::netmon::{generate, NetworkConfig};

fn main() {
    println!("== ABL-5: tight (Appendix E) vs loose (§6.4.1) AVG bounds ==\n");
    println!("query shape: AVG(latency) WHERE traffic > t, sweeping t over the");
    println!("50-node / 149-link generated network (seed 7)\n");

    let network = generate(&NetworkConfig::default());
    let (cache, _master) = network.build_tables();
    let schema = cache.schema().clone();
    let latency = Expr::Column(ColumnRef::bare("latency"))
        .bind(&schema)
        .expect("col");

    let mut rows = Vec::new();
    for t in [100.0, 150.0, 200.0, 250.0, 300.0, 350.0, 400.0, 450.0] {
        let pred = Expr::binary(
            BinaryOp::Gt,
            Expr::Column(ColumnRef::bare("traffic")),
            Expr::Literal(Value::Float(t)),
        )
        .bind(&schema)
        .expect("pred");
        let input = AggInput::build(&cache, Some(&pred), Some(&latency)).expect("input");
        if input.items.is_empty() {
            continue;
        }
        let tight = bounded_avg_tight(&input).expect("tight");
        let loose = bounded_avg_loose(&input).expect("loose");
        assert!(
            loose.contains_interval(tight),
            "tight must be within loose (t = {t})"
        );
        rows.push(vec![
            num(t, 0),
            input.plus_count().to_string(),
            input.question_count().to_string(),
            format!("[{}, {}]", num(tight.lo(), 2), num(tight.hi(), 2)),
            format!("[{}, {}]", num(loose.lo(), 2), num(loose.hi(), 2)),
            num(tight.width(), 2),
            num(loose.width(), 2),
            num(loose.width() / tight.width().max(1e-12), 1),
        ]);
    }
    println!(
        "{}",
        render(
            &[
                "traffic >",
                "|T+|",
                "|T?|",
                "tight bound",
                "loose bound",
                "tight width",
                "loose width",
                "loose/tight"
            ],
            &rows
        )
    );
    println!("\nreading: the gap grows with |T?| — exactly the regime where Appendix E's");
    println!("anchored averaging pays off (the paper's Q6 gap was 25.2 / 6.3 ≈ 4x).");
}
