//! ABL-4 (§7): join refresh heuristics.
//!
//! The paper provides no optimal CHOOSE_REFRESH for joins; the executor
//! refreshes base tuples one round at a time, ranked by a heuristic. This
//! ablation compares the heuristics' total cost and rounds on a
//! two-table workload: `readings ⋈ sensors` aggregating a bounded metric
//! under a selectivity predicate on the other table's bounded column.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trapp_bench::tablefmt::{num, render};
use trapp_core::refresh::iterative::IterativeHeuristic;
use trapp_core::{QuerySession, TableOracle};
use trapp_storage::{Catalog, ColumnDef, Schema, Table};
use trapp_types::{BoundedValue, Value, ValueType};

fn build_catalogs(seed: u64) -> (Catalog, Catalog) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sensors_schema = Schema::new(vec![
        ColumnDef::exact("sensor_id", ValueType::Int),
        ColumnDef::bounded_float("calibration"),
    ])
    .expect("schema");
    let readings_schema = Schema::new(vec![
        ColumnDef::exact("sid", ValueType::Int),
        ColumnDef::bounded_float("reading"),
    ])
    .expect("schema");

    let mut sensors = Table::new("sensors", sensors_schema.clone());
    let mut sensors_m = Table::new("sensors", sensors_schema);
    let mut readings = Table::new("readings", readings_schema.clone());
    let mut readings_m = Table::new("readings", readings_schema);

    for id in 0..12i64 {
        let calib = rng.gen_range(0.5..1.5);
        let half = rng.gen_range(0.05..0.4);
        let cost = rng.gen_range(1..=10) as f64;
        sensors
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(id)),
                    BoundedValue::bounded(calib - half, calib + half).expect("bound"),
                ],
                cost,
            )
            .expect("row");
        sensors_m
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(id)),
                    BoundedValue::exact_f64(calib).expect("value"),
                ],
                cost,
            )
            .expect("row");
    }
    for i in 0..30i64 {
        let sid = rng.gen_range(0..12i64);
        let v = rng.gen_range(10.0..50.0);
        let half = rng.gen_range(0.5..6.0);
        let cost = rng.gen_range(1..=10) as f64;
        let _ = i;
        readings
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(sid)),
                    BoundedValue::bounded(v - half, v + half).expect("bound"),
                ],
                cost,
            )
            .expect("row");
        readings_m
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(sid)),
                    BoundedValue::exact_f64(v).expect("value"),
                ],
                cost,
            )
            .expect("row");
    }

    let mut cache = Catalog::new();
    cache.add_table(sensors).expect("add");
    cache.add_table(readings).expect("add");
    let mut master = Catalog::new();
    master.add_table(sensors_m).expect("add");
    master.add_table(readings_m).expect("add");
    (cache, master)
}

fn main() {
    println!("== ABL-4: join refresh heuristics (§7) ==\n");
    let sql = "SELECT SUM(reading) WITHIN 8 FROM readings, sensors \
               WHERE sid = sensor_id AND calibration > 1.0";
    println!("query: {sql}\n");

    let heuristics = [
        ("best-ratio", IterativeHeuristic::BestRatio),
        ("cheapest-first", IterativeHeuristic::CheapestFirst),
        ("widest-first", IterativeHeuristic::WidestFirst),
    ];

    let seeds: Vec<u64> = (1..=10).collect();
    let mut rows = Vec::new();
    for (name, h) in heuristics {
        let mut total_cost = 0.0;
        let mut total_rounds = 0usize;
        let mut satisfied = 0usize;
        for &seed in &seeds {
            let (cache, master) = build_catalogs(seed);
            let mut s = QuerySession::with_catalog(cache);
            s.config.join_heuristic = h;
            let mut o = TableOracle::new(master);
            let r = s.execute_sql(sql, &mut o).expect("query");
            total_cost += r.refresh_cost;
            total_rounds += r.rounds;
            satisfied += r.satisfied as usize;
        }
        rows.push(vec![
            name.to_string(),
            num(total_cost / seeds.len() as f64, 1),
            num(total_rounds as f64 / seeds.len() as f64, 1),
            format!("{satisfied}/{}", seeds.len()),
        ]);
    }
    println!(
        "{}",
        render(
            &["heuristic", "avg refresh cost", "avg rounds", "satisfied"],
            &rows
        )
    );
    println!("\nreading: best-ratio (width-reduction per unit cost) should dominate or tie;");
    println!("cost-blind widest-first pays more, benefit-blind cheapest-first takes more rounds.");
}
