//! A minimal JSON emitter for machine-readable bench results.
//!
//! The offline dependency budget has no `serde_json`, and bench output
//! needs exactly one thing: serializing a tree of numbers and strings
//! deterministically so successive `BENCH_N.json` baselines diff cleanly.
//! Object keys keep insertion order.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// A finite number; non-finite values render as `null`.
    Num(f64),
    /// A string (escaped on render).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, keys in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An object from `(key, value)` pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Renders with 2-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_items(out, indent, ('[', ']'), items.iter(), |out, item| {
                item.write(out, indent + 1);
            }),
            Json::Obj(pairs) => {
                write_items(out, indent, ('{', '}'), pairs.iter(), |out, (k, v)| {
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                })
            }
        }
    }
}

fn write_items<I: ExactSizeIterator>(
    out: &mut String,
    indent: usize,
    (open, close): (char, char),
    items: I,
    mut write_item: impl FnMut(&mut String, I::Item),
) {
    if items.len() == 0 {
        out.push(open);
        out.push(close);
        return;
    }
    out.push(open);
    let inner = "  ".repeat(indent + 1);
    let mut first = true;
    for item in items {
        if !first {
            out.push(',');
        }
        first = false;
        out.push('\n');
        out.push_str(&inner);
        write_item(out, item);
    }
    out.push('\n');
    out.push_str(&"  ".repeat(indent));
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structure() {
        let v = Json::obj([
            ("name", Json::str("bench")),
            ("qps", Json::Num(1234.5)),
            ("count", Json::Num(42.0)),
            ("ok", Json::Bool(true)),
            ("runs", Json::Arr(vec![Json::Num(1.0), Json::Num(2.0)])),
            ("empty", Json::Arr(vec![])),
        ]);
        let s = v.render();
        assert!(s.contains("\"qps\": 1234.5"));
        assert!(s.contains("\"count\": 42"), "integers render without .0");
        assert!(s.contains("\"ok\": true"));
        assert!(s.contains("\"empty\": []"));
        assert!(s.ends_with("}\n"));
    }

    #[test]
    fn escapes_strings_and_nulls_non_finite() {
        let v = Json::obj([
            ("s", Json::str("a\"b\\c\nd")),
            ("inf", Json::Num(f64::INFINITY)),
        ]);
        let s = v.render();
        assert!(s.contains(r#""a\"b\\c\nd""#));
        assert!(s.contains("\"inf\": null"));
    }
}
