//! Shared experiment drivers for the Figure 5 / Figure 6 reproductions.
//!
//! Both experiments run CHOOSE_REFRESH_SUM over the §5.2.1 stock workload:
//! 90 symbols, day high/low as bounds, close as the precise value, integer
//! costs 1..=10. Figure 5 fixes `R = 100` and sweeps the knapsack ε;
//! Figure 6 fixes `ε = 0.1` and sweeps `R`.

use std::time::Instant;

use trapp_core::agg::{AggInput, Aggregate};
use trapp_core::refresh::{choose_refresh, SolverStrategy};
use trapp_expr::{ColumnRef, Expr};
use trapp_types::TrappError;
use trapp_workload::stocks::{self, StockConfig};

/// One Figure 5 data point.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Knapsack approximation parameter.
    pub epsilon: f64,
    /// CHOOSE_REFRESH wall-clock time in seconds.
    pub choose_refresh_secs: f64,
    /// Total refresh cost of the selected tuples.
    pub refresh_cost: f64,
}

/// One Figure 6 data point.
#[derive(Clone, Debug)]
pub struct Fig6Row {
    /// Precision constraint `R`.
    pub r: f64,
    /// Total refresh cost (the "performance" axis).
    pub refresh_cost: f64,
}

/// Builds the SUM-over-price input for a stock workload.
pub fn stock_input(config: &StockConfig) -> Result<AggInput, TrappError> {
    let days = stocks::generate(config);
    let (cache, _master) = stocks::build_tables(&days);
    let arg = Expr::Column(ColumnRef::bare("price"))
        .bind(cache.schema())
        .expect("price column exists");
    AggInput::build(&cache, None, Some(&arg))
}

/// Figure 5: CHOOSE_REFRESH time and refresh cost as ε varies, `R` fixed.
///
/// `repeats` controls timing stability (the cost is identical across
/// repeats; the minimum time is reported, standard practice for
/// wall-clock microbenchmarks).
pub fn fig5_sweep(
    config: &StockConfig,
    r: f64,
    epsilons: &[f64],
    repeats: usize,
) -> Result<Vec<Fig5Row>, TrappError> {
    let input = stock_input(config)?;
    let mut out = Vec::with_capacity(epsilons.len());
    for &eps in epsilons {
        let mut best = f64::INFINITY;
        let mut cost = 0.0;
        for _ in 0..repeats.max(1) {
            let start = Instant::now();
            let plan = choose_refresh(Aggregate::Sum, &input, r, SolverStrategy::Fptas(eps))?;
            let dt = start.elapsed().as_secs_f64();
            best = best.min(dt);
            cost = plan.planned_cost;
        }
        out.push(Fig5Row {
            epsilon: eps,
            choose_refresh_secs: best,
            refresh_cost: cost,
        });
    }
    Ok(out)
}

/// Figure 6: refresh cost as the precision constraint varies, ε fixed.
pub fn fig6_sweep(
    config: &StockConfig,
    epsilon: f64,
    rs: &[f64],
) -> Result<Vec<Fig6Row>, TrappError> {
    let input = stock_input(config)?;
    let mut out = Vec::with_capacity(rs.len());
    for &r in rs {
        let plan = choose_refresh(Aggregate::Sum, &input, r, SolverStrategy::Fptas(epsilon))?;
        out.push(Fig6Row {
            r,
            refresh_cost: plan.planned_cost,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> StockConfig {
        StockConfig {
            symbols: 30,
            steps: 60,
            ..StockConfig::default()
        }
    }

    /// Figure 5's qualitative claims: smaller ε never increases cost by
    /// much (within the guarantee), and the cost at the smallest ε is no
    /// worse than at the largest.
    #[test]
    fn fig5_cost_improves_or_holds_as_epsilon_shrinks() {
        let rows = fig5_sweep(&quick_config(), 20.0, &[0.5, 0.1, 0.02], 1).unwrap();
        assert_eq!(rows.len(), 3);
        let coarse = rows[0].refresh_cost;
        let fine = rows[2].refresh_cost;
        assert!(fine <= coarse + 1e-9, "fine {fine} vs coarse {coarse}");
    }

    /// Figure 6's qualitative claim: the tradeoff is monotonically
    /// non-increasing in R and hits 0 once R exceeds the total width.
    #[test]
    fn fig6_tradeoff_is_monotone_and_terminates_at_zero() {
        let config = quick_config();
        let input = stock_input(&config).unwrap();
        let total_width: f64 = input.items.iter().map(|i| i.interval.width()).sum();
        let rs: Vec<f64> = (0..=10).map(|i| total_width * i as f64 / 10.0).collect();
        let rows = fig6_sweep(&config, 0.1, &rs).unwrap();
        // Approximate planning is not strictly monotone point-to-point;
        // enforce the paper's shape with a small tolerance and exact
        // endpoints.
        for w in rows.windows(2) {
            assert!(
                w[1].refresh_cost <= w[0].refresh_cost * 1.15 + 1e-9,
                "cost increased sharply: {} -> {}",
                w[0].refresh_cost,
                w[1].refresh_cost
            );
        }
        assert!(rows[0].refresh_cost > 0.0, "R=0 must refresh things");
        assert_eq!(rows.last().unwrap().refresh_cost, 0.0);
    }

    #[test]
    fn exact_reference_cost_lower_bounds_fptas() {
        let config = quick_config();
        let input = stock_input(&config).unwrap();
        let exact = choose_refresh(Aggregate::Sum, &input, 20.0, SolverStrategy::Exact).unwrap();
        let rows = fig5_sweep(&config, 20.0, &[0.1], 1).unwrap();
        assert!(exact.planned_cost <= rows[0].refresh_cost + 1e-9);
    }
}
