//! Minimal aligned-table printing for the figure harnesses.

/// Renders rows as an aligned text table with a header rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{cell:>width$}", width = widths[i]));
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Formats an f64 with `digits` decimals, trimming `-0`.
pub fn num(v: f64, digits: usize) -> String {
    let s = format!("{v:.digits$}");
    if s.starts_with("-0.") && s[1..].parse::<f64>() == Ok(0.0) {
        s[1..].to_string()
    } else {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(
            &["eps", "cost"],
            &[
                vec!["0.1".into(), "345".into()],
                vec!["0.02".into(), "12345".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("eps"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Right-aligned numbers line up at the end.
        assert!(lines[2].ends_with("345"));
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn num_formats() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(-0.0001, 2), "0.00");
        assert_eq!(num(-1.5, 1), "-1.5");
    }
}
