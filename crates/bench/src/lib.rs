//! # trapp-bench
//!
//! The experiment harness: one binary per paper table/figure (see
//! DESIGN.md's per-experiment index) plus Criterion micro-benchmarks.
//! This library hosts the shared experiment drivers so the binaries, the
//! benches, and EXPERIMENTS.md all report the same numbers.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod experiments;
pub mod json;
pub mod tablefmt;

pub use experiments::{fig5_sweep, fig6_sweep, Fig5Row, Fig6Row};
