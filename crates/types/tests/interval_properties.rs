//! Property-based tests for interval arithmetic and the Figure 8 comparison
//! semantics: every interval operation must be a sound over-approximation of
//! the corresponding pointwise operation, and `Certain ⇒ truth ⇒ Possible`
//! for every comparison and every choice of points inside the operand bounds.

use proptest::prelude::*;
use trapp_types::{Interval, Tri};

/// A finite interval plus a sample point inside it.
fn interval_with_point() -> impl Strategy<Value = (Interval, f64)> {
    (-1e6f64..1e6, 0.0f64..1e4, 0.0f64..1.0).prop_map(|(lo, w, frac)| {
        let iv = Interval::new(lo, lo + w).unwrap();
        let p = lo + w * frac;
        (iv, p.clamp(iv.lo(), iv.hi()))
    })
}

proptest! {
    #[test]
    fn addition_is_sound((a, pa) in interval_with_point(), (b, pb) in interval_with_point()) {
        let sum = a + b;
        prop_assert!(sum.contains(pa + pb), "{a} + {b} = {sum} missing {}", pa + pb);
    }

    #[test]
    fn subtraction_is_sound((a, pa) in interval_with_point(), (b, pb) in interval_with_point()) {
        let d = a - b;
        prop_assert!(d.contains(pa - pb));
    }

    #[test]
    fn multiplication_is_sound((a, pa) in interval_with_point(), (b, pb) in interval_with_point()) {
        let m = a * b;
        // Allow for floating-point rounding at the extremes.
        let slack = 1e-6 * (1.0 + m.width().abs() + (pa * pb).abs());
        prop_assert!(
            m.lo() - slack <= pa * pb && pa * pb <= m.hi() + slack,
            "{a} * {b} = {m} missing {}", pa * pb
        );
    }

    #[test]
    fn division_is_sound((a, pa) in interval_with_point(), (b, pb) in interval_with_point()) {
        // Shift the divisor fully positive to avoid zero-straddling.
        let shift = 1.0 - b.lo().min(0.0) * 2.0 + 1.0;
        let b2 = Interval::new(b.lo() + shift, b.hi() + shift).unwrap();
        let pb2 = (pb + shift).clamp(b2.lo(), b2.hi());
        let q = (a / b2).unwrap();
        let slack = 1e-9 * (1.0 + (pa / pb2).abs());
        prop_assert!(q.lo() - slack <= pa / pb2 && pa / pb2 <= q.hi() + slack);
    }

    #[test]
    fn negation_is_sound((a, pa) in interval_with_point()) {
        prop_assert!((-a).contains(-pa));
    }

    /// For every comparison op: Certain(result) ⇒ op(pa, pb) holds, and
    /// op(pa, pb) holds ⇒ Possible(result), for all in-bound points.
    #[test]
    fn comparisons_bracket_truth((a, pa) in interval_with_point(), (b, pb) in interval_with_point()) {
        let cases: [(Tri, bool); 6] = [
            (a.tri_lt(b), pa < pb),
            (a.tri_le(b), pa <= pb),
            (a.tri_gt(b), pa > pb),
            (a.tri_ge(b), pa >= pb),
            (a.tri_eq(b), pa == pb),
            (a.tri_ne(b), pa != pb),
        ];
        for (tri, truth) in cases {
            if tri.is_certain() {
                prop_assert!(truth, "{a} vs {b}: certain but false at ({pa}, {pb})");
            }
            if truth {
                prop_assert!(tri.is_possible(), "{a} vs {b}: true at ({pa}, {pb}) but impossible");
            }
        }
    }

    #[test]
    fn hull_contains_both((a, _) in interval_with_point(), (b, _) in interval_with_point()) {
        let h = a.hull(b);
        prop_assert!(h.contains_interval(a) && h.contains_interval(b));
    }

    #[test]
    fn intersect_is_tight((a, _) in interval_with_point(), (b, _) in interval_with_point()) {
        match a.intersect(b) {
            Some(i) => {
                prop_assert!(a.contains_interval(i) && b.contains_interval(i));
                prop_assert!(i.width() <= a.width() + 1e-12 && i.width() <= b.width() + 1e-12);
            }
            None => {
                prop_assert!(a.hi() < b.lo() || b.hi() < a.lo());
            }
        }
    }

    #[test]
    fn zero_extension_contains_zero_and_original((a, pa) in interval_with_point()) {
        let z = a.extended_to_zero();
        prop_assert!(z.contains(0.0));
        prop_assert!(z.contains(pa));
        prop_assert!(z.width() >= a.width());
        // §6.2 closed form.
        let expected = if a.lo() >= 0.0 {
            a.hi()
        } else if a.hi() <= 0.0 {
            -a.lo()
        } else {
            a.width()
        };
        prop_assert!((z.width() - expected).abs() < 1e-12);
    }
}
