//! Dynamically typed cell values.
//!
//! TRAPP/AG aggregates numeric (real) data, but realistic tables also carry
//! exact-valued descriptive columns (the `from`/`to` node ids of Figure 2,
//! names, flags). A [`Value`] is an exact scalar of one of four types; a
//! [`BoundedValue`] is what a cache actually stores per cell: either an
//! exact value, or — for replicated numeric columns — a bound `[L, H]`
//! guaranteed to contain the master value.

use std::fmt;

use crate::error::TrappError;
use crate::interval::Interval;
use crate::tri::Tri;

/// The type of a column or scalar value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ValueType {
    /// 64-bit real; the only type that may be *bounded*.
    Float,
    /// 64-bit signed integer (exact only; coerces to Float in arithmetic).
    Int,
    /// UTF-8 string (exact only).
    Str,
    /// Boolean (exact only).
    Bool,
}

impl ValueType {
    /// `true` for types that participate in numeric arithmetic/aggregation.
    pub fn is_numeric(self) -> bool {
        matches!(self, ValueType::Float | ValueType::Int)
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValueType::Float => write!(f, "FLOAT"),
            ValueType::Int => write!(f, "INT"),
            ValueType::Str => write!(f, "STRING"),
            ValueType::Bool => write!(f, "BOOL"),
        }
    }
}

/// An exact scalar value.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum Value {
    /// A real number (never NaN).
    Float(f64),
    /// An integer.
    Int(i64),
    /// A string.
    Str(String),
    /// A boolean.
    Bool(bool),
}

impl Value {
    /// The runtime type of this value.
    pub fn value_type(&self) -> ValueType {
        match self {
            Value::Float(_) => ValueType::Float,
            Value::Int(_) => ValueType::Int,
            Value::Str(_) => ValueType::Str,
            Value::Bool(_) => ValueType::Bool,
        }
    }

    /// Numeric view, coercing Int → Float. Errors for Str/Bool.
    pub fn as_f64(&self) -> Result<f64, TrappError> {
        match self {
            Value::Float(v) => Ok(*v),
            Value::Int(v) => Ok(*v as f64),
            other => Err(TrappError::TypeMismatch {
                expected: "numeric value".into(),
                actual: other.value_type().to_string(),
            }),
        }
    }

    /// Boolean view. Errors for non-booleans.
    pub fn as_bool(&self) -> Result<bool, TrappError> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(TrappError::TypeMismatch {
                expected: "boolean value".into(),
                actual: other.value_type().to_string(),
            }),
        }
    }

    /// String view. Errors for non-strings.
    pub fn as_str(&self) -> Result<&str, TrappError> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(TrappError::TypeMismatch {
                expected: "string value".into(),
                actual: other.value_type().to_string(),
            }),
        }
    }

    /// Three-valued equality against another exact value.
    ///
    /// Numeric values compare across Int/Float; comparing incompatible types
    /// (e.g. a string to a number) is an error rather than `False`, because
    /// it indicates a mis-typed query.
    pub fn tri_eq(&self, other: &Value) -> Result<Tri, TrappError> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Ok(Tri::from_bool(a == b)),
            (Value::Bool(a), Value::Bool(b)) => Ok(Tri::from_bool(a == b)),
            (a, b) if a.value_type().is_numeric() && b.value_type().is_numeric() => {
                Ok(Tri::from_bool(a.as_f64()? == b.as_f64()?))
            }
            (a, b) => Err(TrappError::TypeMismatch {
                expected: a.value_type().to_string(),
                actual: b.value_type().to_string(),
            }),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Float(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Bool(b) => write!(f, "{b}"),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Float(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Value {
        Value::Str(v.to_owned())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Value {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}

/// What a cache stores in one cell: an exact value or a numeric bound.
///
/// The paper's convention (§3.1) is that a *refresh* replaces a bound with
/// the master value — representable here as switching a `Bounded` cell to
/// `Exact`, or equivalently to a zero-width bound. Both forms are accepted
/// by all algorithms (`as_interval` treats an exact numeric as a point).
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum BoundedValue {
    /// An exact value of any type.
    Exact(Value),
    /// A range guaranteed to contain the current master value (numeric only).
    Bounded(Interval),
}

impl BoundedValue {
    /// Convenience constructor for an exact float.
    pub fn exact_f64(v: f64) -> Result<BoundedValue, TrappError> {
        if v.is_nan() {
            return Err(TrappError::NanValue);
        }
        Ok(BoundedValue::Exact(Value::Float(v)))
    }

    /// Convenience constructor for a bound `[lo, hi]`.
    pub fn bounded(lo: f64, hi: f64) -> Result<BoundedValue, TrappError> {
        Ok(BoundedValue::Bounded(Interval::new(lo, hi)?))
    }

    /// `true` if the cell is exact (or a zero-width bound).
    pub fn is_exact(&self) -> bool {
        match self {
            BoundedValue::Exact(_) => true,
            BoundedValue::Bounded(b) => b.is_point(),
        }
    }

    /// The numeric range view: exact numerics become point intervals.
    /// Errors for strings/booleans.
    pub fn as_interval(&self) -> Result<Interval, TrappError> {
        match self {
            BoundedValue::Exact(v) => Interval::point(v.as_f64()?),
            BoundedValue::Bounded(b) => Ok(*b),
        }
    }

    /// The exact value view. Errors if the cell is a non-degenerate bound.
    pub fn as_exact(&self) -> Result<Value, TrappError> {
        match self {
            BoundedValue::Exact(v) => Ok(v.clone()),
            BoundedValue::Bounded(b) if b.is_point() => Ok(Value::Float(b.lo())),
            BoundedValue::Bounded(b) => Err(TrappError::BoundednessViolation(format!(
                "expected exact value, found bound {b}"
            ))),
        }
    }

    /// The width of the cell's uncertainty: 0 for exact cells.
    pub fn width(&self) -> f64 {
        match self {
            BoundedValue::Exact(_) => 0.0,
            BoundedValue::Bounded(b) => b.width(),
        }
    }

    /// The declared type of the cell.
    pub fn value_type(&self) -> ValueType {
        match self {
            BoundedValue::Exact(v) => v.value_type(),
            BoundedValue::Bounded(_) => ValueType::Float,
        }
    }

    /// `true` if `master` is consistent with this cell (inside the bound, or
    /// equal to the exact value). Used by correctness validators.
    pub fn admits(&self, master: &Value) -> bool {
        match self {
            BoundedValue::Exact(v) => v == master,
            BoundedValue::Bounded(b) => master.as_f64().map(|m| b.contains(m)).unwrap_or(false),
        }
    }
}

impl fmt::Display for BoundedValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundedValue::Exact(v) => write!(f, "{v}"),
            BoundedValue::Bounded(b) => write!(f, "{b}"),
        }
    }
}

impl From<Value> for BoundedValue {
    fn from(v: Value) -> BoundedValue {
        BoundedValue::Exact(v)
    }
}
impl From<Interval> for BoundedValue {
    fn from(b: Interval) -> BoundedValue {
        BoundedValue::Bounded(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_coercion() {
        assert_eq!(Value::Int(3).as_f64().unwrap(), 3.0);
        assert_eq!(Value::Float(2.5).as_f64().unwrap(), 2.5);
        assert!(Value::Str("x".into()).as_f64().is_err());
        assert!(Value::Bool(true).as_f64().is_err());
    }

    #[test]
    fn tri_eq_across_types() {
        assert_eq!(Value::Int(3).tri_eq(&Value::Float(3.0)).unwrap(), Tri::True);
        assert_eq!(
            Value::Str("a".into())
                .tri_eq(&Value::Str("b".into()))
                .unwrap(),
            Tri::False
        );
        assert!(Value::Str("a".into()).tri_eq(&Value::Int(1)).is_err());
    }

    #[test]
    fn bounded_value_interval_view() {
        let b = BoundedValue::bounded(2.0, 4.0).unwrap();
        assert_eq!(b.as_interval().unwrap(), Interval::new(2.0, 4.0).unwrap());
        assert_eq!(b.width(), 2.0);
        assert!(!b.is_exact());

        let e = BoundedValue::exact_f64(3.0).unwrap();
        assert!(e.is_exact());
        assert_eq!(e.as_interval().unwrap().width(), 0.0);

        let s = BoundedValue::Exact(Value::Str("x".into()));
        assert!(s.as_interval().is_err());
    }

    #[test]
    fn zero_width_bound_counts_as_exact() {
        let z = BoundedValue::Bounded(Interval::point(5.0).unwrap());
        assert!(z.is_exact());
        assert_eq!(z.as_exact().unwrap(), Value::Float(5.0));
        let nz = BoundedValue::bounded(1.0, 2.0).unwrap();
        assert!(nz.as_exact().is_err());
    }

    #[test]
    fn admits_checks_containment() {
        let b = BoundedValue::bounded(2.0, 4.0).unwrap();
        assert!(b.admits(&Value::Float(3.0)));
        assert!(b.admits(&Value::Int(2)));
        assert!(!b.admits(&Value::Float(4.5)));
        assert!(!b.admits(&Value::Str("x".into())));
        let e = BoundedValue::Exact(Value::Str("x".into()));
        assert!(e.admits(&Value::Str("x".into())));
        assert!(!e.admits(&Value::Str("y".into())));
    }
}
