//! A totally ordered floating-point wrapper.
//!
//! Bound endpoints, bound widths, and refresh costs are all real numbers that
//! must participate in ordered index structures (`BTreeMap`) and hash maps.
//! `f64` is not `Ord`/`Eq`/`Hash` because of NaN; [`OrderedF64`] restores
//! those traits by rejecting NaN at construction and ordering by IEEE-754
//! `total_cmp` (so `-0.0 < +0.0` and infinities order correctly).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::error::TrappError;

/// A finite-or-infinite (never NaN) `f64` with total ordering.
///
/// ```
/// use trapp_types::OrderedF64;
/// let a = OrderedF64::new(1.5).unwrap();
/// let b = OrderedF64::new(2.5).unwrap();
/// assert!(a < b);
/// assert!(OrderedF64::new(f64::NAN).is_err());
/// ```
#[derive(Clone, Copy, Default, serde::Serialize, serde::Deserialize)]
#[serde(transparent)]
pub struct OrderedF64(f64);

impl OrderedF64 {
    /// Zero.
    pub const ZERO: OrderedF64 = OrderedF64(0.0);
    /// Positive infinity (used for `min(∅)`).
    pub const INFINITY: OrderedF64 = OrderedF64(f64::INFINITY);
    /// Negative infinity (used for `max(∅)`).
    pub const NEG_INFINITY: OrderedF64 = OrderedF64(f64::NEG_INFINITY);

    /// Wraps `v`, rejecting NaN.
    pub fn new(v: f64) -> Result<Self, TrappError> {
        if v.is_nan() {
            Err(TrappError::NanValue)
        } else {
            Ok(OrderedF64(v))
        }
    }

    /// Wraps `v` without checking for NaN.
    ///
    /// # Panics
    /// Panics in debug builds if `v` is NaN. In release builds a NaN would
    /// silently break ordering invariants, so callers must guarantee
    /// non-NaN input (e.g. values already validated by [`OrderedF64::new`]).
    #[inline]
    pub fn new_unchecked(v: f64) -> Self {
        debug_assert!(!v.is_nan(), "OrderedF64 cannot hold NaN");
        OrderedF64(v)
    }

    /// The underlying float.
    #[inline]
    pub fn get(self) -> f64 {
        self.0
    }

    /// `true` if the value is finite (neither infinite nor NaN).
    #[inline]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Absolute value.
    #[inline]
    pub fn abs(self) -> Self {
        OrderedF64(self.0.abs())
    }

    /// The smaller of `self` and `other`.
    #[inline]
    pub fn min(self, other: Self) -> Self {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// The larger of `self` and `other`.
    #[inline]
    pub fn max(self, other: Self) -> Self {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl PartialEq for OrderedF64 {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.0.total_cmp(&other.0) == Ordering::Equal
    }
}
impl Eq for OrderedF64 {}

impl PartialOrd for OrderedF64 {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for OrderedF64 {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl Hash for OrderedF64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // total_cmp distinguishes -0.0 from +0.0, so hashing raw bits is
        // consistent with Eq.
        self.0.to_bits().hash(state);
    }
}

impl fmt::Debug for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}
impl fmt::Display for OrderedF64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<OrderedF64> for f64 {
    fn from(v: OrderedF64) -> f64 {
        v.0
    }
}

impl TryFrom<f64> for OrderedF64 {
    type Error = TrappError;
    fn try_from(v: f64) -> Result<Self, TrappError> {
        OrderedF64::new(v)
    }
}

impl Add for OrderedF64 {
    type Output = OrderedF64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        // inf + (-inf) = NaN; map to 0 is wrong, so debug-assert instead.
        OrderedF64::new_unchecked(self.0 + rhs.0)
    }
}
impl Sub for OrderedF64 {
    type Output = OrderedF64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        OrderedF64::new_unchecked(self.0 - rhs.0)
    }
}
impl Mul for OrderedF64 {
    type Output = OrderedF64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        OrderedF64::new_unchecked(self.0 * rhs.0)
    }
}
impl Div for OrderedF64 {
    type Output = OrderedF64;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        OrderedF64::new_unchecked(self.0 / rhs.0)
    }
}
impl Neg for OrderedF64 {
    type Output = OrderedF64;
    #[inline]
    fn neg(self) -> Self {
        OrderedF64(-self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn rejects_nan() {
        assert!(OrderedF64::new(f64::NAN).is_err());
        assert!(OrderedF64::new(0.0).is_ok());
        assert!(OrderedF64::new(f64::INFINITY).is_ok());
    }

    #[test]
    fn total_order_with_infinities() {
        let neg = OrderedF64::NEG_INFINITY;
        let zero = OrderedF64::ZERO;
        let pos = OrderedF64::INFINITY;
        assert!(neg < zero && zero < pos);
        assert_eq!(neg.min(pos), neg);
        assert_eq!(neg.max(pos), pos);
    }

    #[test]
    fn negative_zero_orders_below_positive_zero() {
        let nz = OrderedF64::new(-0.0).unwrap();
        let pz = OrderedF64::new(0.0).unwrap();
        assert!(nz < pz);
        assert_ne!(nz, pz);
    }

    #[test]
    fn usable_as_btree_key() {
        let mut m = BTreeMap::new();
        for v in [3.0, 1.0, 2.0, -5.5, 0.25] {
            m.insert(OrderedF64::new(v).unwrap(), v);
        }
        let keys: Vec<f64> = m.keys().map(|k| k.get()).collect();
        assert_eq!(keys, vec![-5.5, 0.25, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn arithmetic() {
        let a = OrderedF64::new(1.5).unwrap();
        let b = OrderedF64::new(0.5).unwrap();
        assert_eq!((a + b).get(), 2.0);
        assert_eq!((a - b).get(), 1.0);
        assert_eq!((a * b).get(), 0.75);
        assert_eq!((a / b).get(), 3.0);
        assert_eq!((-a).get(), -1.5);
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(OrderedF64::new(1.0).unwrap());
        assert!(s.contains(&OrderedF64::new(1.0).unwrap()));
        assert!(!s.contains(&OrderedF64::new(2.0).unwrap()));
    }
}
