//! Shard partitioning: the one hash both sides of a sharded deployment
//! agree on.
//!
//! `trapp-server` hash-partitions the group/object key space across N
//! caches, and `trapp-workload`'s load generator needs the *same* mapping
//! to steer skew at specific shards (its `shard_skew` knob concentrates
//! query popularity on one shard's groups). Keeping the function here —
//! below both crates in the dependency graph — guarantees they can never
//! disagree.
//!
//! The hash is a [SplitMix64] finalizer: two rounds of xor-shift-multiply
//! that avalanche every input bit, so consecutive integer group keys (the
//! common case) spread evenly across shards instead of striping by
//! residue.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

/// The SplitMix64 finalizer: a cheap, well-mixed `u64 → u64` permutation.
#[inline]
pub const fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The shard owning `key` in an `shards`-way partition.
///
/// Signed group keys should be passed via `as u64` (the two's-complement
/// bit pattern); the hash does not care about sign.
///
/// # Panics
///
/// Panics if `shards == 0`.
#[inline]
pub fn shard_of(key: u64, shards: usize) -> usize {
    assert!(shards > 0, "shard_of over zero shards");
    (splitmix64(key) % shards as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_shard_owns_everything() {
        for k in 0..100 {
            assert_eq!(shard_of(k, 1), 0);
        }
    }

    #[test]
    fn partition_is_total_and_stable() {
        for shards in [2usize, 3, 4, 8] {
            for k in 0..1000u64 {
                let s = shard_of(k, shards);
                assert!(s < shards);
                assert_eq!(s, shard_of(k, shards), "stable per key");
            }
        }
    }

    /// Consecutive integer keys must not stripe onto one shard — the whole
    /// point of hashing instead of taking residues.
    #[test]
    fn consecutive_keys_spread() {
        let shards = 4;
        let mut counts = [0usize; 4];
        for k in 0..64u64 {
            counts[shard_of(k, shards)] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                c >= 4,
                "shard {s} got {c} of 64 consecutive keys: {counts:?}"
            );
        }
    }
}
