//! # trapp-types
//!
//! Foundational value types for the TRAPP replication system
//! (Olston & Widom, *Offering a Precision-Performance Tradeoff for
//! Aggregation Queries over Replicated Data*, VLDB 2000).
//!
//! TRAPP caches store **bounds** `[L, H]` that are guaranteed to contain the
//! current master value of each replicated data object, and queries over those
//! bounds return **bounded answers** — again intervals — accompanied by
//! quantitative *precision constraints*. This crate provides the numeric and
//! logical substrate for that model:
//!
//! * [`OrderedF64`] — a totally ordered, hashable `f64` wrapper (NaN rejected),
//!   usable as a B-tree index key over bound endpoints.
//! * [`Interval`] — closed real intervals with the arithmetic needed to
//!   evaluate expressions over bounded data (§5–§6 of the paper), including
//!   the empty-aggregate conventions `min(∅) = +∞`, `max(∅) = −∞`.
//! * [`Tri`] — Kleene three-valued logic used by the `Possible`/`Certain`
//!   predicate transformations of Figure 8 / Appendix D.
//! * [`Value`] / [`BoundedValue`] — dynamically typed cell values; numeric
//!   cells may be *exact* or *bounded*.
//! * Strongly typed identifiers for objects, tuples, sources, and caches.
//! * [`shard_of`] — the partition hash a sharded deployment's server and
//!   workload sides share.
//! * [`TrappError`] — the shared error type.

#![deny(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod float;
pub mod id;
pub mod interval;
pub mod shard;
pub mod tri;
pub mod value;

pub use error::{PartialFailure, SourceFailure, TrappError, TrappResult};
pub use float::OrderedF64;
pub use id::{CacheId, ObjectId, SourceId, TupleId};
pub use interval::Interval;
pub use shard::shard_of;
pub use tri::Tri;
pub use value::{BoundedValue, Value, ValueType};
