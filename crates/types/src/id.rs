//! Strongly typed identifiers.
//!
//! TRAPP systems name four kinds of entities: replicated *objects* (the
//! master copies at sources), *tuples* (rows of a cached table — in TRAPP/AG a
//! tuple's bounded cells are the cached images of objects), *sources*, and
//! *caches*. Mixing these up is an easy bug class, so each gets a newtype.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
            serde::Serialize, serde::Deserialize,
        )]
        #[serde(transparent)]
        pub struct $name(pub u64);

        impl $name {
            /// Wraps a raw id.
            #[inline]
            pub const fn new(raw: u64) -> Self {
                $name(raw)
            }
            /// The raw id.
            #[inline]
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                $name(raw)
            }
        }
    };
}

define_id!(
    /// Identifies a replicated data object (master copy at a single source).
    ObjectId,
    "obj#"
);
define_id!(
    /// Identifies a tuple (row) within a cached table.
    TupleId,
    "t#"
);
define_id!(
    /// Identifies a data source.
    SourceId,
    "src#"
);
define_id!(
    /// Identifies a data cache.
    CacheId,
    "cache#"
);

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn ids_are_distinct_types() {
        // This is a compile-time property; here we just exercise the API.
        let o = ObjectId::new(1);
        let t = TupleId::new(1);
        assert_eq!(o.raw(), t.raw());
        assert_eq!(format!("{o}"), "obj#1");
        assert_eq!(format!("{t:?}"), "t#1");
    }

    #[test]
    fn ids_order_and_collect() {
        let set: BTreeSet<TupleId> = [3u64, 1, 2].into_iter().map(TupleId::from).collect();
        let v: Vec<u64> = set.into_iter().map(|t| t.raw()).collect();
        assert_eq!(v, vec![1, 2, 3]);
    }
}
