//! Closed real intervals and the comparison semantics of Figure 8.
//!
//! A TRAPP cache stores, for every replicated object `Oᵢ`, a bound
//! `[Lᵢ, Hᵢ]` guaranteed to contain the master value `Vᵢ` (§3.1). Bounded
//! aggregate answers are intervals too (§1.3). This module implements:
//!
//! * interval construction and the width/containment queries used everywhere,
//! * **interval arithmetic** (`+`, `−`, `×`, `÷`, negation) so that
//!   aggregation and selection over arbitrary numeric *expressions* of bounded
//!   columns remain sound over-approximations,
//! * the **three-valued comparisons** of Figure 8 (`=`, `≠`, `<`, `≤`, `>`,
//!   `≥` on ranges), returning [`Tri`],
//! * helpers specific to the paper's algorithms: zero-extension for
//!   `SUM` with predicates (§6.2) and endpoint clamping for the Appendix D
//!   refinement.

use std::fmt;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::error::TrappError;
use crate::float::OrderedF64;
use crate::tri::Tri;

/// A closed interval `[lo, hi]` over the extended reals, with `lo ≤ hi` and
/// neither endpoint NaN.
///
/// Degenerate (point) intervals represent exact values; `Interval::point(v)`
/// has zero width. Infinite endpoints represent unbounded knowledge, e.g.
/// the implicit `R = ∞` precision constraint.
///
/// ```
/// use trapp_types::Interval;
/// let b = Interval::new(2.0, 4.0).unwrap();
/// assert_eq!(b.width(), 2.0);
/// assert!(b.contains(3.0));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Interval {
    lo: OrderedF64,
    hi: OrderedF64,
}

impl Interval {
    /// The full extended real line `[−∞, +∞]`.
    pub const UNBOUNDED: Interval = Interval {
        lo: OrderedF64::NEG_INFINITY,
        hi: OrderedF64::INFINITY,
    };

    /// The degenerate interval `[0, 0]`.
    pub const ZERO: Interval = Interval {
        lo: OrderedF64::ZERO,
        hi: OrderedF64::ZERO,
    };

    /// Creates `[lo, hi]`, validating `lo ≤ hi` and rejecting NaN.
    pub fn new(lo: f64, hi: f64) -> Result<Interval, TrappError> {
        if lo.is_nan() || hi.is_nan() {
            return Err(TrappError::NanValue);
        }
        if lo > hi {
            return Err(TrappError::InvalidInterval { lo, hi });
        }
        Ok(Interval {
            lo: OrderedF64::new_unchecked(lo),
            hi: OrderedF64::new_unchecked(hi),
        })
    }

    /// Creates `[lo, hi]` without validation.
    ///
    /// # Panics
    /// Debug-asserts the invariants; intended for internal hot paths where
    /// the endpoints were already validated.
    #[inline]
    pub fn new_unchecked(lo: f64, hi: f64) -> Interval {
        debug_assert!(!lo.is_nan() && !hi.is_nan() && lo <= hi);
        Interval {
            lo: OrderedF64::new_unchecked(lo),
            hi: OrderedF64::new_unchecked(hi),
        }
    }

    /// The degenerate interval `[v, v]` (an exact value).
    pub fn point(v: f64) -> Result<Interval, TrappError> {
        Interval::new(v, v)
    }

    /// Lower endpoint `L`.
    #[inline]
    pub fn lo(self) -> f64 {
        self.lo.get()
    }

    /// Upper endpoint `H`.
    #[inline]
    pub fn hi(self) -> f64 {
        self.hi.get()
    }

    /// Lower endpoint as an ordered float (for index keys).
    #[inline]
    pub fn lo_key(self) -> OrderedF64 {
        self.lo
    }

    /// Upper endpoint as an ordered float (for index keys).
    #[inline]
    pub fn hi_key(self) -> OrderedF64 {
        self.hi
    }

    /// The precision of the bound: `H − L` (0 = exact, ∞ = unbounded).
    #[inline]
    pub fn width(self) -> f64 {
        let w = self.hi.get() - self.lo.get();
        // [−∞, −∞] or [+∞, +∞] are degenerate points of width 0, but IEEE
        // gives ∞ − ∞ = NaN; normalize.
        if w.is_nan() {
            0.0
        } else {
            w
        }
    }

    /// `true` if the interval is a single point (width 0).
    #[inline]
    pub fn is_point(self) -> bool {
        self.lo == self.hi
    }

    /// `true` if both endpoints are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.lo.is_finite() && self.hi.is_finite()
    }

    /// `true` if `v ∈ [L, H]`.
    #[inline]
    pub fn contains(self, v: f64) -> bool {
        !v.is_nan() && self.lo.get() <= v && v <= self.hi.get()
    }

    /// `true` if `other ⊆ self`.
    #[inline]
    pub fn contains_interval(self, other: Interval) -> bool {
        self.lo <= other.lo && other.hi <= self.hi
    }

    /// The midpoint; for infinite endpoints returns the finite one, or 0.
    pub fn midpoint(self) -> f64 {
        match (self.lo.is_finite(), self.hi.is_finite()) {
            (true, true) => self.lo.get() * 0.5 + self.hi.get() * 0.5,
            (true, false) => self.lo.get(),
            (false, true) => self.hi.get(),
            (false, false) => 0.0,
        }
    }

    /// Intersection, or `None` if disjoint.
    pub fn intersect(self, other: Interval) -> Option<Interval> {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo <= hi {
            Some(Interval { lo, hi })
        } else {
            None
        }
    }

    /// Smallest interval containing both (convex hull).
    pub fn hull(self, other: Interval) -> Interval {
        Interval {
            lo: self.lo.min(other.lo),
            hi: self.hi.max(other.hi),
        }
    }

    /// Extends the interval to include 0.
    ///
    /// §6.2: when computing `SUM` with a selection predicate, a `T?` tuple
    /// might fall out of the selection and contribute 0, so its effective
    /// bound is the hull of `[L, H]` and `{0}`.
    pub fn extended_to_zero(self) -> Interval {
        self.hull(Interval::ZERO)
    }

    /// The knapsack weight of this bound once zero-extended (§6.2):
    /// `H` if `L ≥ 0`, `−L` if `H ≤ 0`, else `H − L`.
    pub fn zero_extended_width(self) -> f64 {
        self.extended_to_zero().width()
    }

    /// Raises the lower endpoint to `min_lo` if it is below it
    /// (Appendix D refinement: a predicate `a > c` on the aggregation column
    /// lets us use `[max(L, c), H]`). Returns `None` if that empties the
    /// interval.
    pub fn clamp_lo(self, min_lo: f64) -> Option<Interval> {
        self.intersect(Interval::new_unchecked(min_lo, f64::INFINITY))
    }

    /// Lowers the upper endpoint to `max_hi` if it is above it. Returns
    /// `None` if that empties the interval.
    pub fn clamp_hi(self, max_hi: f64) -> Option<Interval> {
        self.intersect(Interval::new_unchecked(f64::NEG_INFINITY, max_hi))
    }

    /// Scales both endpoints by a non-negative factor.
    pub fn scale(self, k: f64) -> Interval {
        debug_assert!(k >= 0.0 && !k.is_nan());
        Interval {
            lo: OrderedF64::new_unchecked(mul_ext(self.lo.get(), k)),
            hi: OrderedF64::new_unchecked(mul_ext(self.hi.get(), k)),
        }
    }

    // ----- Figure 8: three-valued comparisons over ranges -----
    //
    // Exact values participate as point intervals (the paper's convention
    // K_min = K_max = K).

    /// `[x] = [y]`: Possible ⇔ xmin ≤ ymax ∧ xmax ≥ ymin;
    /// Certain ⇔ xmin = xmax = ymin = ymax.
    pub fn tri_eq(self, other: Interval) -> Tri {
        let possible = self.lo <= other.hi && self.hi >= other.lo;
        let certain = self.lo == self.hi && other.lo == other.hi && self.lo == other.lo;
        Tri::from_possible_certain(possible, certain)
    }

    /// `[x] ≠ [y]` — the negation of [`Interval::tri_eq`].
    pub fn tri_ne(self, other: Interval) -> Tri {
        self.tri_eq(other).negate()
    }

    /// `[x] < [y]`: Possible ⇔ xmin < ymax; Certain ⇔ xmax < ymin.
    pub fn tri_lt(self, other: Interval) -> Tri {
        Tri::from_possible_certain(self.lo < other.hi, self.hi < other.lo)
    }

    /// `[x] ≤ [y]`: Possible ⇔ xmin ≤ ymax; Certain ⇔ xmax ≤ ymin.
    pub fn tri_le(self, other: Interval) -> Tri {
        Tri::from_possible_certain(self.lo <= other.hi, self.hi <= other.lo)
    }

    /// `[x] > [y]` — mirror of `<`.
    pub fn tri_gt(self, other: Interval) -> Tri {
        other.tri_lt(self)
    }

    /// `[x] ≥ [y]` — mirror of `≤`.
    pub fn tri_ge(self, other: Interval) -> Tri {
        other.tri_le(self)
    }
}

/// Extended-real multiplication with the interval-arithmetic convention
/// `0 × ±∞ = 0` (rather than IEEE's NaN).
#[inline]
fn mul_ext(a: f64, b: f64) -> f64 {
    if a == 0.0 || b == 0.0 {
        0.0
    } else {
        a * b
    }
}

/// Extended-real addition; `∞ + (−∞)` cannot arise from valid interval
/// operand pairings, but we keep a deterministic result (0) rather than NaN.
#[inline]
fn add_ext(a: f64, b: f64) -> f64 {
    let s = a + b;
    if s.is_nan() {
        0.0
    } else {
        s
    }
}

impl Add for Interval {
    type Output = Interval;
    /// `[a,b] + [c,d] = [a+c, b+d]`.
    fn add(self, rhs: Interval) -> Interval {
        Interval::new_unchecked(
            add_ext(self.lo.get(), rhs.lo.get()),
            add_ext(self.hi.get(), rhs.hi.get()),
        )
    }
}

impl Sub for Interval {
    type Output = Interval;
    /// `[a,b] − [c,d] = [a−d, b−c]`.
    fn sub(self, rhs: Interval) -> Interval {
        Interval::new_unchecked(
            add_ext(self.lo.get(), -rhs.hi.get()),
            add_ext(self.hi.get(), -rhs.lo.get()),
        )
    }
}

impl Neg for Interval {
    type Output = Interval;
    /// `−[a,b] = [−b, −a]`.
    fn neg(self) -> Interval {
        Interval {
            lo: -self.hi,
            hi: -self.lo,
        }
    }
}

impl Mul for Interval {
    type Output = Interval;
    /// `[a,b] × [c,d]` = hull of all endpoint products.
    fn mul(self, rhs: Interval) -> Interval {
        let (a, b) = (self.lo.get(), self.hi.get());
        let (c, d) = (rhs.lo.get(), rhs.hi.get());
        let p = [mul_ext(a, c), mul_ext(a, d), mul_ext(b, c), mul_ext(b, d)];
        let mut lo = p[0];
        let mut hi = p[0];
        for &x in &p[1..] {
            if x < lo {
                lo = x;
            }
            if x > hi {
                hi = x;
            }
        }
        Interval::new_unchecked(lo, hi)
    }
}

impl Div for Interval {
    type Output = Result<Interval, TrappError>;
    /// `[a,b] ÷ [c,d]`; errors if the divisor contains 0.
    ///
    /// TRAPP predicates and aggregate expressions treat division by an
    /// interval straddling zero as a query error rather than returning the
    /// unbounded interval — a silent `[−∞, +∞]` would satisfy no finite
    /// precision constraint anyway, and an explicit error is more debuggable.
    fn div(self, rhs: Interval) -> Result<Interval, TrappError> {
        if rhs.contains(0.0) {
            return Err(TrappError::DivisionByZeroInterval);
        }
        let inv = Interval::new_unchecked(1.0 / rhs.hi.get(), 1.0 / rhs.lo.get());
        Ok(self * inv)
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}
impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Interval {
        Interval::new(lo, hi).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(Interval::new(1.0, 0.0).is_err());
        assert!(Interval::new(f64::NAN, 1.0).is_err());
        assert!(Interval::new(1.0, f64::NAN).is_err());
        assert!(Interval::new(1.0, 1.0).unwrap().is_point());
        assert!(Interval::UNBOUNDED.contains(1e300));
    }

    #[test]
    fn width_and_contains() {
        let b = iv(2.0, 4.0);
        assert_eq!(b.width(), 2.0);
        assert!(b.contains(2.0) && b.contains(4.0) && b.contains(3.0));
        assert!(!b.contains(1.999) && !b.contains(4.001));
        assert!(!b.contains(f64::NAN));
        assert_eq!(Interval::UNBOUNDED.width(), f64::INFINITY);
    }

    #[test]
    fn intersect_and_hull() {
        assert_eq!(iv(0.0, 2.0).intersect(iv(1.0, 3.0)), Some(iv(1.0, 2.0)));
        assert_eq!(iv(0.0, 1.0).intersect(iv(2.0, 3.0)), None);
        // touching intervals intersect in a point
        assert_eq!(iv(0.0, 1.0).intersect(iv(1.0, 2.0)), Some(iv(1.0, 1.0)));
        assert_eq!(iv(0.0, 1.0).hull(iv(2.0, 3.0)), iv(0.0, 3.0));
    }

    #[test]
    fn zero_extension_matches_paper_sum_weights() {
        // §6.2: if L ≥ 0, W = H; if H ≤ 0, W = −L; otherwise W = H − L.
        assert_eq!(iv(2.0, 4.0).zero_extended_width(), 4.0);
        assert_eq!(iv(-4.0, -1.0).zero_extended_width(), 4.0);
        assert_eq!(iv(-3.0, 5.0).zero_extended_width(), 8.0);
        assert_eq!(iv(0.0, 7.0).zero_extended_width(), 7.0);
    }

    #[test]
    fn arithmetic() {
        assert_eq!(iv(1.0, 2.0) + iv(10.0, 20.0), iv(11.0, 22.0));
        assert_eq!(iv(1.0, 2.0) - iv(10.0, 20.0), iv(-19.0, -8.0));
        assert_eq!(-iv(1.0, 2.0), iv(-2.0, -1.0));
        assert_eq!(iv(1.0, 2.0) * iv(3.0, 4.0), iv(3.0, 8.0));
        assert_eq!(iv(-1.0, 2.0) * iv(3.0, 4.0), iv(-4.0, 8.0));
        assert_eq!(iv(-2.0, -1.0) * iv(-4.0, -3.0), iv(3.0, 8.0));
        assert_eq!((iv(1.0, 2.0) / iv(2.0, 4.0)).unwrap(), iv(0.25, 1.0));
        assert!((iv(1.0, 2.0) / iv(-1.0, 1.0)).is_err());
        assert!((iv(1.0, 2.0) / iv(0.0, 1.0)).is_err());
    }

    #[test]
    fn multiplication_with_infinite_endpoints() {
        let unb = Interval::UNBOUNDED;
        let z = Interval::ZERO;
        // 0 × [−∞, ∞] = 0 under the interval convention.
        assert_eq!(unb * z, z);
        assert_eq!(unb * iv(2.0, 3.0), unb);
    }

    #[test]
    fn figure8_lt() {
        // Disjoint: certainly less.
        assert_eq!(iv(1.0, 2.0).tri_lt(iv(3.0, 4.0)), Tri::True);
        // Overlapping: maybe.
        assert_eq!(iv(1.0, 3.0).tri_lt(iv(2.0, 4.0)), Tri::Maybe);
        // Reversed disjoint: certainly not.
        assert_eq!(iv(3.0, 4.0).tri_lt(iv(1.0, 2.0)), Tri::False);
        // Touching endpoints: [1,2] < [2,3] is possible (1 < 3) but not
        // certain (2 < 2 fails).
        assert_eq!(iv(1.0, 2.0).tri_lt(iv(2.0, 3.0)), Tri::Maybe);
        // Points: 2 < 2 is certainly false; but [2,2] < [2,3]? possible:
        // xmin(2) < ymax(3) yes; certain: 2 < 2 no → Maybe.
        assert_eq!(iv(2.0, 2.0).tri_lt(iv(2.0, 2.0)), Tri::False);
        assert_eq!(iv(2.0, 2.0).tri_lt(iv(2.0, 3.0)), Tri::Maybe);
    }

    #[test]
    fn figure8_le() {
        assert_eq!(iv(1.0, 2.0).tri_le(iv(2.0, 3.0)), Tri::True);
        assert_eq!(iv(1.0, 3.0).tri_le(iv(2.0, 4.0)), Tri::Maybe);
        assert_eq!(iv(3.0, 4.0).tri_le(iv(1.0, 2.0)), Tri::False);
        // [3,4] ≤ [2,3]: possible (3 ≤ 3), not certain (4 ≤ 2 fails).
        assert_eq!(iv(3.0, 4.0).tri_le(iv(2.0, 3.0)), Tri::Maybe);
    }

    #[test]
    fn figure8_eq() {
        assert_eq!(iv(2.0, 2.0).tri_eq(iv(2.0, 2.0)), Tri::True);
        assert_eq!(iv(1.0, 3.0).tri_eq(iv(2.0, 4.0)), Tri::Maybe);
        assert_eq!(iv(1.0, 2.0).tri_eq(iv(3.0, 4.0)), Tri::False);
        // Equal non-point ranges are only possibly equal.
        assert_eq!(iv(1.0, 2.0).tri_eq(iv(1.0, 2.0)), Tri::Maybe);
        assert_eq!(iv(1.0, 2.0).tri_ne(iv(3.0, 4.0)), Tri::True);
        assert_eq!(iv(2.0, 2.0).tri_ne(iv(2.0, 2.0)), Tri::False);
    }

    #[test]
    fn gt_ge_are_mirrors() {
        let a = iv(1.0, 3.0);
        let b = iv(2.0, 4.0);
        assert_eq!(a.tri_gt(b), b.tri_lt(a));
        assert_eq!(a.tri_ge(b), b.tri_le(a));
    }

    #[test]
    fn clamp_refinement() {
        // Appendix D example: bound [3,8] under predicate "< 5" can shrink to
        // [3,5]; under "> 10" it empties.
        let b = iv(3.0, 8.0);
        assert_eq!(b.clamp_hi(5.0), Some(iv(3.0, 5.0)));
        assert_eq!(b.clamp_lo(10.0), None);
        assert_eq!(b.clamp_lo(1.0), Some(b));
    }

    #[test]
    fn display() {
        assert_eq!(format!("{}", iv(2.0, 4.5)), "[2, 4.5]");
    }
}
