//! Kleene three-valued logic.
//!
//! Section 6 / Appendix D of the paper classify tuples against a selection
//! predicate `P` evaluated over *bounded* data: a tuple may **certainly**
//! satisfy `P` (it lands in `T+`), **possibly** satisfy it (`T?`), or
//! certainly not (`T−`). The paper expresses this via two predicate
//! transformations, `Possible(P)` and `Certain(P)` (Figure 8). Those
//! transformations are exactly strong-Kleene three-valued evaluation:
//!
//! * `Certain(P)`  ⇔ `eval₃(P) = True`
//! * `Possible(P)` ⇔ `eval₃(P) ≠ False`
//!
//! The asymmetries the paper notes — conjunction is only an *implication* for
//! `Possible`, disjunction only an implication for `Certain` — correspond to
//! Kleene logic being conservative in the presence of correlated
//! subexpressions (e.g. `x < 5 OR x ≥ 5` evaluates to `Maybe` even though it
//! is a tautology). This loses *optimality* only, never correctness, exactly
//! as discussed in Appendix D.

use std::fmt;
use std::ops::{BitAnd, BitOr, Not};

/// A three-valued truth value: `False < Maybe < True`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Tri {
    /// The predicate certainly does not hold for any values in the bounds.
    False,
    /// The predicate holds for some assignments within the bounds and fails
    /// for others.
    Maybe,
    /// The predicate certainly holds for all values in the bounds.
    True,
}

impl Tri {
    /// Lifts a Boolean into three-valued logic.
    #[inline]
    pub fn from_bool(b: bool) -> Tri {
        if b {
            Tri::True
        } else {
            Tri::False
        }
    }

    /// Builds a `Tri` from the pair (`possible`, `certain`).
    ///
    /// `certain ⇒ possible` is required; violations indicate a bug in a
    /// comparison routine and panic in debug builds.
    #[inline]
    pub fn from_possible_certain(possible: bool, certain: bool) -> Tri {
        debug_assert!(!certain || possible, "certain implies possible");
        if certain {
            Tri::True
        } else if possible {
            Tri::Maybe
        } else {
            Tri::False
        }
    }

    /// `Certain(P)` in the paper's terminology: the predicate is guaranteed.
    #[inline]
    pub fn is_certain(self) -> bool {
        self == Tri::True
    }

    /// `Possible(P)` in the paper's terminology: some assignment satisfies it.
    #[inline]
    pub fn is_possible(self) -> bool {
        self != Tri::False
    }

    /// Kleene conjunction.
    #[inline]
    pub fn and(self, other: Tri) -> Tri {
        std::cmp::min(self, other)
    }

    /// Kleene disjunction.
    #[inline]
    pub fn or(self, other: Tri) -> Tri {
        std::cmp::max(self, other)
    }

    /// Kleene negation.
    #[inline]
    pub fn negate(self) -> Tri {
        match self {
            Tri::True => Tri::False,
            Tri::Maybe => Tri::Maybe,
            Tri::False => Tri::True,
        }
    }
}

impl Not for Tri {
    type Output = Tri;
    fn not(self) -> Tri {
        self.negate()
    }
}
impl BitAnd for Tri {
    type Output = Tri;
    fn bitand(self, rhs: Tri) -> Tri {
        self.and(rhs)
    }
}
impl BitOr for Tri {
    type Output = Tri;
    fn bitor(self, rhs: Tri) -> Tri {
        self.or(rhs)
    }
}

impl fmt::Display for Tri {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tri::True => write!(f, "true"),
            Tri::Maybe => write!(f, "maybe"),
            Tri::False => write!(f, "false"),
        }
    }
}

impl From<bool> for Tri {
    fn from(b: bool) -> Tri {
        Tri::from_bool(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Tri; 3] = [Tri::False, Tri::Maybe, Tri::True];

    #[test]
    fn kleene_truth_tables() {
        use Tri::*;
        // AND
        assert_eq!(True & True, True);
        assert_eq!(True & Maybe, Maybe);
        assert_eq!(True & False, False);
        assert_eq!(Maybe & Maybe, Maybe);
        assert_eq!(Maybe & False, False);
        assert_eq!(False & False, False);
        // OR
        assert_eq!(False | False, False);
        assert_eq!(False | Maybe, Maybe);
        assert_eq!(False | True, True);
        assert_eq!(Maybe | Maybe, Maybe);
        assert_eq!(Maybe | True, True);
        assert_eq!(True | True, True);
        // NOT
        assert_eq!(!True, False);
        assert_eq!(!Maybe, Maybe);
        assert_eq!(!False, True);
    }

    /// Figure 8's NOT rules: Possible(¬E) ⇔ ¬Certain(E); Certain(¬E) ⇔ ¬Possible(E).
    #[test]
    fn negation_swaps_possible_and_certain() {
        for t in ALL {
            assert_eq!((!t).is_possible(), !t.is_certain());
            assert_eq!((!t).is_certain(), !t.is_possible());
        }
    }

    /// Figure 8's AND rules: Certain(E1 ∧ E2) ⇔ Certain(E1) ∧ Certain(E2)
    /// and Possible(E1 ∧ E2) ⇒ Possible(E1) ∧ Possible(E2) — in Kleene
    /// evaluation the conjunction's Possible equals the conjunction of
    /// Possibles (the implication direction the paper keeps is from the
    /// original semantics to the translated formula; Kleene realises the
    /// translated formula).
    #[test]
    fn conjunction_certainty() {
        for a in ALL {
            for b in ALL {
                assert_eq!((a & b).is_certain(), a.is_certain() && b.is_certain());
                assert_eq!((a & b).is_possible(), a.is_possible() && b.is_possible());
            }
        }
    }

    /// Figure 8's OR rules, dually.
    #[test]
    fn disjunction_possibility() {
        for a in ALL {
            for b in ALL {
                assert_eq!((a | b).is_possible(), a.is_possible() || b.is_possible());
                assert_eq!((a | b).is_certain(), a.is_certain() || b.is_certain());
            }
        }
    }

    #[test]
    fn de_morgan_holds_in_kleene() {
        for a in ALL {
            for b in ALL {
                assert_eq!(!(a & b), (!a) | (!b));
                assert_eq!(!(a | b), (!a) & (!b));
            }
        }
    }

    #[test]
    fn from_possible_certain_roundtrip() {
        for t in ALL {
            let back = Tri::from_possible_certain(t.is_possible(), t.is_certain());
            assert_eq!(back, t);
        }
    }
}
