//! Shared error type for the TRAPP crates.
//!
//! The workspace deliberately avoids external error-handling crates; this is
//! a plain enum with manual `Display`/`Error` implementations. Higher-level
//! crates (`trapp-sql`, `trapp-core`) wrap their own context around these
//! variants where useful.

use std::fmt;

use crate::id::SourceId;

/// Convenience alias used throughout the workspace.
pub type TrappResult<T> = Result<T, TrappError>;

/// One source's contribution to a partial failure: which source failed
/// and the underlying transport/source error.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceFailure {
    /// The source whose refresh round-trip failed.
    pub source: SourceId,
    /// The underlying cause (boxed to keep [`TrappError`] small).
    pub cause: Box<TrappError>,
}

impl fmt::Display for SourceFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.source, self.cause)
    }
}

/// Structured payload of [`TrappError::PartialResult`]: which shards
/// survived the scatter, which lost their slice, and the per-source error
/// causes. Surviving refreshes have already been installed when this
/// error is returned — only the *answer* is withheld.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PartialFailure {
    /// Shard indexes whose plan slices completed (refreshes installed).
    pub surviving_shards: Vec<usize>,
    /// Shard indexes that lost at least one per-source batch.
    pub failed_shards: Vec<usize>,
    /// Per-source causes, one entry per failed (source, batch) — after
    /// retries were exhausted.
    pub sources: Vec<SourceFailure>,
}

impl PartialFailure {
    /// The sources that failed, deduplicated in first-failure order.
    pub fn failed_sources(&self) -> Vec<SourceId> {
        let mut seen = Vec::new();
        for s in &self.sources {
            if !seen.contains(&s.source) {
                seen.push(s.source);
            }
        }
        seen
    }
}

impl fmt::Display for PartialFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} of {} shard(s) lost their slice of the plan",
            self.failed_shards.len(),
            self.failed_shards.len() + self.surviving_shards.len(),
        )?;
        if !self.sources.is_empty() {
            write!(f, " (")?;
            for (i, s) in self.sources.iter().enumerate() {
                if i > 0 {
                    write!(f, "; ")?;
                }
                write!(f, "{s}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Errors produced by TRAPP components.
#[derive(Debug, Clone, PartialEq)]
pub enum TrappError {
    /// A NaN was supplied where a real number is required.
    NanValue,
    /// An interval was constructed with `lo > hi`.
    InvalidInterval {
        /// Attempted lower endpoint.
        lo: f64,
        /// Attempted upper endpoint.
        hi: f64,
    },
    /// A precision constraint was negative.
    NegativePrecision(f64),
    /// A refresh cost was negative or NaN.
    InvalidCost(f64),
    /// Two values of incompatible types were combined.
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it actually received.
        actual: String,
    },
    /// A named column does not exist in the schema.
    UnknownColumn(String),
    /// A named table does not exist in the catalog.
    UnknownTable(String),
    /// A table with this name already exists in the catalog.
    DuplicateTable(String),
    /// A tuple id was not found in the table.
    UnknownTuple(u64),
    /// A row's arity or types do not match the table schema.
    SchemaViolation(String),
    /// A bounded value was found where an exact value is required
    /// (or vice versa).
    BoundednessViolation(String),
    /// SQL lexing/parsing failure, with byte offset into the input.
    Parse {
        /// Human-readable message.
        message: String,
        /// Byte offset of the offending token.
        offset: usize,
    },
    /// Query planning/binding failure (e.g. aggregation over a string column).
    Plan(String),
    /// The refresh oracle could not supply a master value for an object.
    RefreshFailed(String),
    /// A scatter-gathered query lost one or more shards: the surviving
    /// partial aggregates cannot bound the full answer, so no answer is
    /// returned (a wrong-but-confident bound would violate TRAPP's core
    /// guarantee). The payload carries the surviving/failed shard sets
    /// and the per-source error causes.
    PartialResult(Box<PartialFailure>),
    /// A refresh round-trip exceeded its deadline. Unlike
    /// [`TrappError::RefreshFailed`], the request may still complete at
    /// the source; the gateway keeps a handle and installs the refresh
    /// if and when it lands (seq-guarded), so cache and Refresh Monitor
    /// never diverge.
    Timeout {
        /// The source whose reply did not arrive in time.
        source: SourceId,
        /// How long the caller waited, in milliseconds.
        waited_ms: u64,
    },
    /// A source is considered down (its circuit breaker is open): the
    /// request was failed fast without a round-trip.
    SourceUnavailable(SourceId),
    /// A query carried a `DEADLINE` and the service could not honor its
    /// precision constraint within the remaining time budget (strict
    /// degradation policy). Refreshes that arrived before the deadline
    /// were already installed when this is returned — only the answer is
    /// withheld, never rolled back.
    DeadlineExceeded {
        /// The query's deadline, in milliseconds.
        deadline_ms: u64,
        /// Time already spent (queue wait + execution) when the service
        /// gave up, in milliseconds.
        elapsed_ms: u64,
        /// The narrowest precision constraint the planner estimated it
        /// *could* have honored in the remaining budget, when known —
        /// what a best-effort retry would get.
        honorable_within: Option<f64>,
    },
    /// The service shed the query at admission: the queue was already
    /// deeper than the configured rejection watermark, so no work was
    /// started on its behalf.
    Overloaded {
        /// Queue depth observed at admission.
        queue_depth: u64,
        /// The configured rejection watermark.
        limit: u64,
    },
    /// Division by an interval containing zero during interval evaluation.
    DivisionByZeroInterval,
    /// The operation is not supported in this configuration.
    Unsupported(String),
    /// Internal invariant violation; indicates a bug in TRAPP itself.
    Internal(String),
}

impl fmt::Display for TrappError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrappError::NanValue => write!(f, "NaN is not a valid TRAPP value"),
            TrappError::InvalidInterval { lo, hi } => {
                write!(f, "invalid interval: lo ({lo}) > hi ({hi})")
            }
            TrappError::NegativePrecision(r) => {
                write!(f, "precision constraint must be non-negative, got {r}")
            }
            TrappError::InvalidCost(c) => {
                write!(f, "refresh cost must be a non-negative real, got {c}")
            }
            TrappError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            TrappError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            TrappError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            TrappError::DuplicateTable(t) => write!(f, "table already exists: {t}"),
            TrappError::UnknownTuple(id) => write!(f, "unknown tuple id: {id}"),
            TrappError::SchemaViolation(m) => write!(f, "schema violation: {m}"),
            TrappError::BoundednessViolation(m) => {
                write!(f, "boundedness violation: {m}")
            }
            TrappError::Parse { message, offset } => {
                write!(f, "parse error at byte {offset}: {message}")
            }
            TrappError::Plan(m) => write!(f, "planning error: {m}"),
            TrappError::RefreshFailed(m) => write!(f, "refresh failed: {m}"),
            TrappError::PartialResult(p) => {
                write!(f, "partial result: {p}")
            }
            TrappError::Timeout { source, waited_ms } => {
                write!(f, "refresh from {source} timed out after {waited_ms} ms")
            }
            TrappError::SourceUnavailable(s) => {
                write!(f, "source {s} is unavailable (circuit breaker open)")
            }
            TrappError::DeadlineExceeded {
                deadline_ms,
                elapsed_ms,
                honorable_within,
            } => {
                write!(
                    f,
                    "deadline of {deadline_ms} ms exceeded after {elapsed_ms} ms"
                )?;
                if let Some(w) = honorable_within {
                    write!(f, " (WITHIN {w} was honorable in the remaining budget)")?;
                }
                Ok(())
            }
            TrappError::Overloaded { queue_depth, limit } => {
                write!(
                    f,
                    "service overloaded: queue depth {queue_depth} exceeds the \
                     admission limit {limit}"
                )
            }
            TrappError::DivisionByZeroInterval => {
                write!(f, "division by an interval containing zero")
            }
            TrappError::Unsupported(m) => write!(f, "unsupported operation: {m}"),
            TrappError::Internal(m) => write!(f, "internal TRAPP error: {m}"),
        }
    }
}

impl std::error::Error for TrappError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = TrappError::InvalidInterval { lo: 2.0, hi: 1.0 };
        assert!(e.to_string().contains("lo (2)"));
        let e = TrappError::Parse {
            message: "expected FROM".into(),
            offset: 17,
        };
        assert!(e.to_string().contains("byte 17"));
        let e = TrappError::UnknownColumn("lat".into());
        assert_eq!(e.to_string(), "unknown column: lat");
    }

    #[test]
    fn partial_failure_is_structured_and_displayable() {
        let p = PartialFailure {
            surviving_shards: vec![0, 2, 3],
            failed_shards: vec![1],
            sources: vec![
                SourceFailure {
                    source: SourceId::new(7),
                    cause: Box::new(TrappError::RefreshFailed("boom".into())),
                },
                SourceFailure {
                    source: SourceId::new(7),
                    cause: Box::new(TrappError::Timeout {
                        source: SourceId::new(7),
                        waited_ms: 41,
                    }),
                },
            ],
        };
        assert_eq!(p.failed_sources(), vec![SourceId::new(7)]);
        let e = TrappError::PartialResult(Box::new(p));
        let msg = e.to_string();
        assert!(msg.contains("1 of 4 shard(s)"), "{msg}");
        assert!(msg.contains("src#7"), "{msg}");
        assert!(msg.contains("timed out after 41 ms"), "{msg}");
        assert!(TrappError::SourceUnavailable(SourceId::new(3))
            .to_string()
            .contains("src#3"));
    }

    #[test]
    fn overload_errors_are_typed_and_displayable() {
        let e = TrappError::DeadlineExceeded {
            deadline_ms: 50,
            elapsed_ms: 63,
            honorable_within: Some(4.0),
        };
        let msg = e.to_string();
        assert!(
            msg.contains("deadline of 50 ms exceeded after 63 ms"),
            "{msg}"
        );
        assert!(msg.contains("WITHIN 4"), "{msg}");
        let e = TrappError::DeadlineExceeded {
            deadline_ms: 10,
            elapsed_ms: 12,
            honorable_within: None,
        };
        assert!(!e.to_string().contains("WITHIN"));
        let e = TrappError::Overloaded {
            queue_depth: 65,
            limit: 64,
        };
        let msg = e.to_string();
        assert!(msg.contains("queue depth 65"), "{msg}");
        assert!(msg.contains("limit 64"), "{msg}");
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> = Box::new(TrappError::NanValue);
        assert!(e.to_string().contains("NaN"));
    }
}
