//! # TRAPP — Tradeoff in Replication Precision and Performance
//!
//! A from-scratch Rust implementation of the TRAPP/AG system from
//! Olston & Widom, *Offering a Precision-Performance Tradeoff for Aggregation
//! Queries over Replicated Data* (VLDB 2000).
//!
//! This facade crate re-exports the full public API. See the individual
//! crates for details:
//!
//! * [`types`] — intervals, three-valued logic, values.
//! * [`bounds`] — time-parameterized bound functions and adaptive widths.
//! * [`storage`] — the in-memory relational substrate.
//! * [`expr`] — expressions and `Possible`/`Certain` classification.
//! * [`sql`] — the TRAPP/AG query language parser.
//! * [`knapsack`] — 0/1 knapsack solvers behind CHOOSE_REFRESH.
//! * [`core`] — bounded aggregation and CHOOSE_REFRESH (the paper's
//!   contribution).
//! * [`system`] — sources, caches, refresh monitors, transports.
//! * [`server`] — the sharded, concurrent multi-client query service:
//!   worker pool, hash-partitioned cache shards with scatter-gather
//!   merging, refresh coalescing, batched source round-trips.
//! * [`workload`] — experiment and serving workload generators.
//!
//! ## Quickstart
//!
//! ```
//! use trapp::prelude::*;
//!
//! // Build the paper's Figure 2 table and answer Q1 with a precision
//! // constraint of 10 Mbps.
//! let table = trapp::workload::figure2::links_table();
//! let session = QuerySession::new(table);
//! let query = parse_query(
//!     "SELECT MIN(bandwidth) WITHIN 10 FROM links WHERE on_path = true",
//! ).unwrap();
//! # let _ = (session, query);
//! ```

pub use trapp_bounds as bounds;
pub use trapp_core as core;
pub use trapp_expr as expr;
pub use trapp_knapsack as knapsack;
pub use trapp_server as server;
pub use trapp_sql as sql;
pub use trapp_storage as storage;
pub use trapp_system as system;
pub use trapp_types as types;
pub use trapp_workload as workload;

/// Commonly used items, re-exported for `use trapp::prelude::*`.
pub mod prelude {
    pub use trapp_core::{
        agg::{Aggregate, BoundedAnswer},
        executor::{QuerySession, RefreshOracle},
        refresh::RefreshPlan,
    };
    pub use trapp_server::{QueryService, ServiceBuilder, ServiceConfig};
    pub use trapp_sql::parse_query;
    pub use trapp_storage::{Catalog, ColumnDef, Schema, Table};
    pub use trapp_types::{BoundedValue, Interval, TrappError, Tri, Value};
}
