//! Unbounded MPMC channels with crossbeam-compatible surface.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    ready: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn queue(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: shared.clone(),
        },
        Receiver { shared },
    )
}

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(PartialEq, Eq, Clone, Copy)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(PartialEq, Eq, Clone, Copy, Debug)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

/// The sending half of a channel.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Sender<T> {
    /// Enqueues `value`, failing if every receiver has been dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        self.shared.queue().push_back(value);
        self.shared.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake all blocked receivers so they observe
            // the disconnect. The lock serializes this notify against a
            // receiver's check-then-wait, preventing a missed wakeup.
            let _guard = self.shared.queue();
            self.shared.ready.notify_all();
        }
    }
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives or all senders are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self
                .shared
                .ready
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue();
        if let Some(v) = queue.pop_front() {
            return Ok(v);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Blocks until a message arrives, all senders are gone, or `timeout`
    /// elapses.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let mut queue = self.shared.queue();
        loop {
            if let Some(v) = queue.pop_front() {
                return Ok(v);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (q, _timed_out) = self
                .shared
                .ready
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            queue = q;
        }
    }

    /// Drains and returns every message currently queued, without blocking.
    pub fn try_iter(&self) -> impl Iterator<Item = T> + '_ {
        std::iter::from_fn(move || self.try_recv().ok())
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: self.shared.clone(),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn send_recv_fifo() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_semantics() {
        let (tx, rx) = unbounded::<i32>();
        drop(rx);
        assert!(tx.send(1).is_err());

        let (tx, rx) = unbounded::<i32>();
        tx.send(7).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn cross_thread_wakeup() {
        let (tx, rx) = unbounded();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn timeout_elapses() {
        let (_tx, rx) = unbounded::<i32>();
        let r = rx.recv_timeout(Duration::from_millis(5));
        assert_eq!(r, Err(RecvTimeoutError::Timeout));
    }
}
