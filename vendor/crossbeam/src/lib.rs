//! Offline stand-in for `crossbeam`.
//!
//! Implements the subset this repository uses: `crossbeam::channel`'s
//! unbounded MPMC channel with cloneable senders *and* receivers, built on
//! `std::sync::{Mutex, Condvar}`. Semantics mirror crossbeam's: `send`
//! fails once every receiver is gone, `recv` drains remaining messages and
//! then fails once every sender is gone.

pub mod channel;
