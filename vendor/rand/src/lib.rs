//! Offline stand-in for `rand` (0.8-era API surface).
//!
//! Implements the subset this repository uses: `StdRng` seeded via
//! `SeedableRng::seed_from_u64`, plus `Rng::{gen_range, gen_bool, gen}`
//! over integer and float ranges. The generator is xoshiro256** seeded
//! through SplitMix64 — deterministic per seed, which is all the workload
//! generators and tests rely on (the exact stream differs from upstream
//! `rand`; nothing in the repo depends on upstream's stream).

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    //! Named RNG types.
    pub use super::StdRng;
}

/// Seeding interface: the repo only uses `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A deterministic xoshiro256** generator.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion, as recommended by the xoshiro authors.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// The user-facing random-value interface.
pub trait Rng {
    /// The next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform sample from `range` (half-open or inclusive, ints or
    /// floats).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.next_f64() < p
    }

    /// A random value of a supported type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard {
    /// Samples one value.
    fn sample<R: Rng>(rng: &mut R) -> Self;
}

impl Standard for bool {
    fn sample<R: Rng>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng>(rng: &mut R) -> f64 {
        rng.next_f64()
    }
}

/// Ranges [`Rng::gen_range`] accepts. Mirrors upstream rand's structure —
/// blanket impls over [`SampleUniform`] element types — so type inference
/// behaves the same as with the real crate.
pub trait SampleRange<T> {
    /// Samples uniformly from the range.
    fn sample<R: Rng>(self, rng: &mut R) -> T;
}

/// Types uniformly sampleable from a `lo..hi` span.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample in `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_in<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty gen_range");
        T::sample_in(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: Rng>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty gen_range");
        T::sample_in(rng, start, end, true)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng>(rng: &mut R, lo: Self, hi: Self, inclusive: bool) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + if inclusive { 1 } else { 0 };
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_in<R: Rng>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool) -> Self {
                lo + (rng.next_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let v: u64 = rng.gen_range(1..=10);
            assert!((1..=10).contains(&v));
            let f: f64 = rng.gen_range(-1.5..2.5);
            assert!((-1.5..2.5).contains(&f));
            let f: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
