//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize`/`Deserialize` derive macros (as no-ops) and
//! same-named marker traits so `serde::Serialize` resolves in both the
//! macro and trait namespaces. No serialization machinery is included —
//! nothing in this repository serializes values; the derives only mark
//! wire-safe types.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the stub).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods in the stub).
pub trait Deserialize<'de> {}
