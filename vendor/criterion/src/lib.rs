//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the repo's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros — with a simple median-of-samples timer instead
//! of criterion's statistical machinery. Good enough to compare solver
//! variants by eye; not a statistics engine.

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Label for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("group {name}");
        BenchmarkGroup {
            _c: self,
            name,
            samples: 20,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), 20, &mut f);
        self
    }
}

/// A named group sharing configuration.
pub struct BenchmarkGroup<'a> {
    _c: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(5);
        self
    }

    /// Benchmarks `f` with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Benchmarks a closure taking only the bencher.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.samples, &mut f);
        self
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

fn run_one(label: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        duration: Duration::ZERO,
        iters: 0,
    };
    // Warmup pass (also calibrates nothing — the stub keeps iters fixed).
    f(&mut b);
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        b.duration = Duration::ZERO;
        b.iters = 0;
        f(&mut b);
        if b.iters > 0 {
            per_iter.push(b.duration.as_secs_f64() / b.iters as f64);
        }
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);
    eprintln!("  {label:<40} {:>12.3} ns/iter", median * 1e9);
}

/// Passed to benchmark closures; time accumulates over `iter` calls.
pub struct Bencher {
    duration: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine`, keeping its output alive via `black_box`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const ITERS: u64 = 10;
        let start = Instant::now();
        for _ in 0..ITERS {
            black_box(routine());
        }
        self.duration += start.elapsed();
        self.iters += ITERS;
    }

    /// Times `routine` on a fresh `setup()` input per iteration; only the
    /// routine is timed.
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        const ITERS: u64 = 10;
        for _ in 0..ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.duration += start.elapsed();
        }
        self.iters += ITERS;
    }
}

/// Declares a set of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
