//! Offline stand-in for `serde_derive`.
//!
//! The real crate is unavailable in this build environment (no network, no
//! vendored registry). The repo only uses `#[derive(serde::Serialize,
//! serde::Deserialize)]` plus `#[serde(...)]` helper attributes to mark
//! types as serializable; nothing actually serializes them. These derives
//! therefore accept the same syntax and expand to nothing, keeping every
//! annotated type compiling unchanged.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` (and `#[serde(...)]` helpers); emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` (and `#[serde(...)]` helpers); emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
