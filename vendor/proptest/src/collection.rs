//! Collection strategies: `proptest::collection::vec`.

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// An inclusive size range for generated collections.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = if self.size.lo == self.size.hi {
            self.size.lo
        } else {
            self.size.lo + rng.below(self.size.hi - self.size.lo + 1)
        };
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}
