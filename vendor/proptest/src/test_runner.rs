//! Test configuration and the deterministic RNG behind value generation.

/// Per-property configuration; only `cases` is honored by the stub.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic xoshiro256** generator seeded from the test name, so every
/// run of a property replays the same case sequence.
#[derive(Clone, Debug)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds from an FNV-1a hash of the fully qualified test name.
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng::from_seed(h)
    }

    /// Seeds from a raw 64-bit value via SplitMix64 expansion.
    pub fn from_seed(seed: u64) -> TestRng {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// A uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform index in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }
}
