//! The `Strategy` trait and core combinators.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `pred`; panics if 1000 consecutive
    /// samples are rejected (the stub does not do global rejection
    /// bookkeeping).
    fn prop_filter<W, F>(self, whence: W, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        W: Into<String>,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            pred,
        }
    }

    /// Builds a recursive strategy: `recurse` receives the strategy for the
    /// previous depth level and returns the next level; generation draws
    /// from the deepest level. `_desired_size` and `_expected_branch` are
    /// accepted for API compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut level = self.boxed();
        for _ in 0..depth {
            level = recurse(level).boxed();
        }
        level
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cloneable type-erased strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(self.0.clone())
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted choice among boxed strategies; built by `prop_oneof!`.
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> Union<T> {
    /// Builds a union; weights must not all be zero.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! needs a positive total weight");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.next_u64() % self.total;
        for (w, strat) in &self.arms {
            if pick < *w as u64 {
                return strat.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

/// Types with a canonical strategy, for `any::<T>()`.
pub trait Arbitrary: Sized {
    /// The canonical strategy type.
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy for [`Arbitrary`] primitives.
#[derive(Clone, Copy, Debug)]
pub struct AnyPrimitive<T>(std::marker::PhantomData<T>);

macro_rules! arbitrary_primitive {
    ($($t:ty => $gen:expr),* $(,)?) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(std::marker::PhantomData)
            }
        }
    )*};
}

arbitrary_primitive! {
    bool => |rng| rng.next_u64() & 1 == 1,
    u8 => |rng| rng.next_u64() as u8,
    u16 => |rng| rng.next_u64() as u16,
    u32 => |rng| rng.next_u64() as u32,
    u64 => |rng| rng.next_u64(),
    usize => |rng| rng.next_u64() as usize,
    i8 => |rng| rng.next_u64() as i8,
    i16 => |rng| rng.next_u64() as i16,
    i32 => |rng| rng.next_u64() as i32,
    i64 => |rng| rng.next_u64() as i64,
    isize => |rng| rng.next_u64() as isize,
}

// Numeric range strategies.

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                start + (rng.next_f64() as $t) * (end - start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// Tuple strategies (arity 2..=8).

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

// Character-class regex string strategies: `"[a-z][a-z0-9_]{0,8}"` etc.

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        generate_from_pattern(self, rng)
    }
}

/// One parsed regex atom: the characters it can produce plus a repetition
/// range.
struct Atom {
    choices: Vec<char>,
    min: usize,
    max: usize,
}

fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse_pattern(pattern);
    let mut out = String::new();
    for atom in &atoms {
        let n = if atom.min == atom.max {
            atom.min
        } else {
            atom.min + rng.below(atom.max - atom.min + 1)
        };
        for _ in 0..n {
            out.push(atom.choices[rng.below(atom.choices.len())]);
        }
    }
    out
}

/// Parses the supported regex subset: literals, `[...]` classes with
/// ranges, and `{m}` / `{m,n}` / `?` / `*` / `+` quantifiers.
fn parse_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let choices = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing escape in {pattern:?}");
                let c = chars[i];
                i += 1;
                vec![c]
            }
            c => {
                assert!(
                    !matches!(c, '(' | ')' | '|' | '.' | '^' | '$'),
                    "unsupported regex feature {c:?} in {pattern:?} (stub supports literals, classes, quantifiers)"
                );
                i += 1;
                vec![c]
            }
        };
        // Optional quantifier.
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '?' => {
                    i += 1;
                    (0, 1)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '{' => {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                        + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse().expect("quantifier min"),
                            n.trim().parse().expect("quantifier max"),
                        ),
                        None => {
                            let m = body.trim().parse().expect("quantifier count");
                            (m, m)
                        }
                    }
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        assert!(!choices.is_empty(), "empty character class in {pattern:?}");
        atoms.push(Atom { choices, min, max });
    }
    atoms
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(1)
    }

    #[test]
    fn ranges_and_maps() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (0..10u64).generate(&mut r);
            assert!(v < 10);
            let f = (0.5f64..2.0).generate(&mut r);
            assert!((0.5..2.0).contains(&f));
            let m = (0..10u64).prop_map(|x| x * 2).generate(&mut r);
            assert!(m % 2 == 0 && m < 20);
        }
    }

    #[test]
    fn filter_and_union() {
        let mut r = rng();
        let even = (0..100u64).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert!(even.generate(&mut r) % 2 == 0);
        }
        let u = Union::new(vec![(1, Just(1u8).boxed()), (3, Just(2u8).boxed())]);
        let mut saw = [0u32; 3];
        for _ in 0..400 {
            saw[u.generate(&mut r) as usize] += 1;
        }
        assert!(saw[1] > 0 && saw[2] > saw[1]);
    }

    #[test]
    fn regex_identifier_shape() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-z][a-z0-9_]{0,8}".generate(&mut r);
            assert!(!s.is_empty() && s.len() <= 9, "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn recursive_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u64),
            Node(Box<Tree>, Box<Tree>),
        }
        let strat = (0..10u64)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 12, 2, |inner| {
                crate::prop_oneof![
                    (inner.clone(), inner.clone())
                        .prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b))),
                    inner,
                ]
            });
        let mut r = rng();
        let mut saw_node = false;
        for _ in 0..50 {
            if matches!(strat.generate(&mut r), Tree::Node(..)) {
                saw_node = true;
            }
        }
        assert!(saw_node);
    }
}
