//! Offline stand-in for `proptest`.
//!
//! A miniature but *functional* property-testing harness implementing the
//! subset of the proptest API this repository's test suites use: the
//! `proptest!` macro, `Strategy` with `prop_map` / `prop_filter` /
//! `prop_recursive`, range and tuple strategies, `Just`, `any::<bool>()`,
//! weighted `prop_oneof!`, `collection::vec`, `option::of`, and
//! character-class regex string strategies.
//!
//! Differences from upstream: cases are sampled from a deterministic
//! per-test RNG (seeded from the test's module path and name) and failing
//! inputs are **not shrunk** — the failure message reports the case number
//! so a failure reproduces exactly by rerunning the test.

pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Runs each property with generated inputs; see the crate docs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default(); $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;) => {};
    (config = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::generate(&$strat, &mut __rng);
                )+
                let __result: ::std::result::Result<(), ::std::string::String> =
                    (|| { $body; ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(__msg) = __result {
                    ::std::panic!(
                        "proptest property {} failed at case {}/{}: {}",
                        stringify!($name), __case, __config.cases, __msg
                    );
                }
            }
        }
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {:?} != {:?}: {}", l, r, ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {:?} == {:?}: {}", l, r, ::std::format!($($fmt)+)
        );
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Picks among strategies, optionally weighted (`w => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}
