//! Option strategies: `proptest::option::of`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Generates `None` a quarter of the time, `Some` otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.next_u64() % 4 == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
