//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind the `parking_lot` API shape the repo
//! uses: `lock()`/`read()`/`write()` return guards directly (no poison
//! `Result`). Poisoning is swallowed by continuing with the inner value —
//! matching `parking_lot`'s no-poisoning semantics.

use std::sync::PoisonError;

pub use self::condvar::Condvar;

/// A mutex whose `lock` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose `read`/`write` never fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock, ignoring poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write lock, ignoring poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }
}

mod condvar {
    use super::MutexGuard;
    use std::sync::PoisonError;
    use std::time::Duration;

    /// Condition variable compatible with [`super::Mutex`] guards.
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        /// Creates a new condition variable.
        pub const fn new() -> Condvar {
            Condvar(std::sync::Condvar::new())
        }

        /// Blocks until notified.
        pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
            replace_guard(guard, |g| {
                self.0.wait(g).unwrap_or_else(PoisonError::into_inner)
            });
        }

        /// Blocks until notified or the timeout elapses. Returns `true` if
        /// the wait timed out.
        pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
            let mut timed_out = false;
            replace_guard(guard, |g| {
                let (g, r) = self
                    .0
                    .wait_timeout(g, timeout)
                    .unwrap_or_else(PoisonError::into_inner);
                timed_out = r.timed_out();
                g
            });
            timed_out
        }

        /// Wakes one waiter.
        pub fn notify_one(&self) {
            self.0.notify_one();
        }

        /// Wakes all waiters.
        pub fn notify_all(&self) {
            self.0.notify_all();
        }
    }

    /// Applies a guard-consuming wait to a `&mut` guard in place.
    fn replace_guard<T>(
        slot: &mut MutexGuard<'_, T>,
        f: impl FnOnce(MutexGuard<'_, T>) -> MutexGuard<'_, T>,
    ) {
        // SAFETY-free swap via Option dance: std's wait() consumes the
        // guard, but callers hold `&mut guard`. Temporarily move it out.
        unsafe {
            let guard = std::ptr::read(slot);
            let new_guard = f(guard);
            std::ptr::write(slot, new_guard);
        }
    }
}
