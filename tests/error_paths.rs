//! Error-path coverage for the query session: every user-visible failure
//! mode must surface as a typed `TrappError` with an actionable message,
//! never a panic, and must leave the cache in a usable state.

use trapp_core::{QuerySession, RefreshOracle, TableOracle};
use trapp_storage::{Catalog, ColumnDef, Schema, Table};
use trapp_types::{BoundedValue, TrappError, TupleId, Value, ValueType};
use trapp_workload::figure2;

fn session() -> (QuerySession, TableOracle) {
    (
        QuerySession::new(figure2::links_table()),
        TableOracle::from_table(figure2::master_table()),
    )
}

#[test]
fn parse_errors_surface_with_positions() {
    let (mut s, mut o) = session();
    for (sql, needle) in [
        ("SELECT", "aggregate function"),
        ("SELECT FOO(x) FROM links", "aggregate function"),
        ("SELECT SUM(latency) WITHIN -3 FROM links", "non-negative"),
        ("SELECT SUM(latency) FROM", "table name"),
        ("SELECT SUM(latency) FROM links WHERE", "expression"),
        ("SELECT SUM(latency) FROM links trailing", "trailing"),
    ] {
        let err = s.execute_sql(sql, &mut o).unwrap_err();
        assert!(
            err.to_string().contains(needle),
            "{sql}: `{err}` missing `{needle}`"
        );
    }
}

#[test]
fn binding_errors_name_the_missing_entity() {
    let (mut s, mut o) = session();
    let err = s
        .execute_sql("SELECT SUM(latency) FROM ghosts", &mut o)
        .unwrap_err();
    assert!(matches!(err, TrappError::UnknownTable(t) if t == "ghosts"));
    let err = s
        .execute_sql("SELECT SUM(ghost_col) FROM links", &mut o)
        .unwrap_err();
    assert!(matches!(err, TrappError::UnknownColumn(c) if c == "ghost_col"));
}

#[test]
fn type_errors_are_rejected_before_execution() {
    let (mut s, mut o) = session();
    // Aggregating a boolean, comparing string to number, boolean ordering.
    for sql in [
        "SELECT SUM(on_path) FROM links",
        "SELECT SUM(latency) FROM links WHERE on_path > 1",
        "SELECT SUM(latency) FROM links WHERE latency",
        "SELECT MIN(latency) FROM links WHERE on_path < TRUE",
    ] {
        assert!(s.execute_sql(sql, &mut o).is_err(), "{sql} should fail");
    }
    // The session stays usable after failures.
    let ok = s.execute_sql("SELECT COUNT(*) FROM links", &mut o).unwrap();
    assert_eq!(ok.answer.range.lo(), 6.0);
}

#[test]
fn avg_over_certainly_empty_selection_errors() {
    let (mut s, mut o) = session();
    let err = s
        .execute_sql(
            "SELECT AVG(latency) FROM links WHERE latency > 1000",
            &mut o,
        )
        .unwrap_err();
    assert!(matches!(err, TrappError::Unsupported(_)));
    // MIN over the same empty selection is fine ([+∞, +∞], width 0).
    let ok = s
        .execute_sql(
            "SELECT MIN(latency) FROM links WHERE latency > 1000",
            &mut o,
        )
        .unwrap();
    assert!(ok.satisfied);
}

#[test]
fn median_with_predicate_is_rejected() {
    let (mut s, mut o) = session();
    let err = s
        .execute_sql(
            "SELECT MEDIAN(latency) WITHIN 1 FROM links WHERE traffic > 100",
            &mut o,
        )
        .unwrap_err();
    assert!(err.to_string().contains("not supported"));
}

/// An oracle that always fails: mid-query refresh failures must propagate
/// without corrupting the already-applied part of the cache.
struct BrokenOracle;
impl RefreshOracle for BrokenOracle {
    fn refresh(
        &mut self,
        _table: &str,
        _tid: TupleId,
        _columns: &[usize],
    ) -> Result<Vec<f64>, TrappError> {
        Err(TrappError::RefreshFailed("source unreachable".into()))
    }
}

#[test]
fn oracle_failures_propagate_cleanly() {
    let mut s = QuerySession::new(figure2::links_table());
    let mut broken = BrokenOracle;
    let err = s
        .execute_sql("SELECT SUM(latency) WITHIN 1 FROM links", &mut broken)
        .unwrap_err();
    assert!(matches!(err, TrappError::RefreshFailed(_)));
    // Cache-only queries still work afterwards.
    let mut o = TableOracle::from_table(figure2::master_table());
    let ok = s
        .execute_sql("SELECT SUM(latency) FROM links", &mut o)
        .unwrap();
    assert!(ok.satisfied);
}

/// An oracle returning the wrong arity is a protocol violation.
struct ShortOracle;
impl RefreshOracle for ShortOracle {
    fn refresh(
        &mut self,
        _table: &str,
        _tid: TupleId,
        _columns: &[usize],
    ) -> Result<Vec<f64>, TrappError> {
        Ok(vec![]) // always empty
    }
}

#[test]
fn oracle_arity_mismatch_is_detected() {
    let mut s = QuerySession::new(figure2::links_table());
    let mut short = ShortOracle;
    let err = s
        .execute_sql("SELECT SUM(latency) WITHIN 1 FROM links", &mut short)
        .unwrap_err();
    assert!(err.to_string().contains("values for"));
}

#[test]
fn grouped_execution_rejects_mismatched_entry_points() {
    let (mut s, mut o) = session();
    // Grouped query through the scalar entry point…
    let q = trapp_sql::parse_query("SELECT SUM(latency) FROM links GROUP BY from_node").unwrap();
    assert!(s.execute(&q, &mut o).is_err());
    // …and a scalar query through the grouped entry point.
    let q = trapp_sql::parse_query("SELECT SUM(latency) FROM links").unwrap();
    assert!(s.execute_grouped(&q, &mut o).is_err());
}

#[test]
fn empty_tables_answer_gracefully() {
    let schema = Schema::new(vec![
        ColumnDef::exact("id", ValueType::Int),
        ColumnDef::bounded_float("x"),
    ])
    .unwrap();
    let mut catalog = Catalog::new();
    catalog
        .add_table(Table::new("empty", schema.clone()))
        .unwrap();
    let mut s = QuerySession::with_catalog(catalog);
    let mut master = Catalog::new();
    master.add_table(Table::new("empty", schema)).unwrap();
    let mut o = TableOracle::new(master);

    let r = s.execute_sql("SELECT COUNT(*) FROM empty", &mut o).unwrap();
    assert_eq!(r.answer.range.lo(), 0.0);
    let r = s
        .execute_sql("SELECT SUM(x) WITHIN 1 FROM empty", &mut o)
        .unwrap();
    assert_eq!(r.answer.range.lo(), 0.0);
    assert!(r.satisfied);
    let r = s.execute_sql("SELECT MIN(x) FROM empty", &mut o).unwrap();
    assert_eq!(r.answer.range.lo(), f64::INFINITY);
    assert!(s.execute_sql("SELECT AVG(x) FROM empty", &mut o).is_err());
}

#[test]
fn refreshing_unknown_tuples_errors() {
    let (mut s, _o) = session();
    let mut o = TableOracle::from_table(figure2::master_table());
    let err = s
        .refresh_tuple("links", TupleId::new(99), &mut o)
        .unwrap_err();
    assert!(matches!(err, TrappError::UnknownTuple(99)));
    let err = s
        .refresh_tuple("ghosts", TupleId::new(1), &mut o)
        .unwrap_err();
    assert!(matches!(err, TrappError::UnknownTable(_)));
}

#[test]
fn exact_columns_in_predicates_are_free() {
    // Predicates over exact columns never create T? tuples, so precision
    // constraints are met without touching the oracle.
    let (mut s, mut o) = session();
    let r = s
        .execute_sql(
            "SELECT COUNT(*) WITHIN 0 FROM links WHERE from_node = 2",
            &mut o,
        )
        .unwrap();
    assert!(r.answer.is_exact());
    assert_eq!(r.answer.range.lo(), 2.0);
    assert!(r.refreshed.is_empty());
}

#[test]
fn inserted_rows_participate_immediately() {
    let (mut s, mut o) = session();
    s.catalog_mut()
        .table_mut("links")
        .unwrap()
        .insert_with_cost(
            vec![
                BoundedValue::Exact(Value::Int(6)),
                BoundedValue::Exact(Value::Int(1)),
                BoundedValue::bounded(1.0, 2.0).unwrap(),
                BoundedValue::bounded(80.0, 90.0).unwrap(),
                BoundedValue::bounded(10.0, 20.0).unwrap(),
                BoundedValue::Exact(Value::Bool(false)),
            ],
            1.0,
        )
        .unwrap();
    let r = s.execute_sql("SELECT COUNT(*) FROM links", &mut o).unwrap();
    assert_eq!(r.answer.range.lo(), 7.0);
    // MIN over latency now sees the new row's [1, 2] bound.
    let r = s
        .execute_sql("SELECT MIN(latency) FROM links", &mut o)
        .unwrap();
    assert_eq!(r.answer.range.lo(), 1.0);
}
