//! Cross-crate integration tests: SQL text in, guaranteed bounded answers
//! out, through the full stack (parser → planner → classification →
//! aggregate → CHOOSE_REFRESH → oracle → recompute), including the
//! system-level path with sources, bound functions, and both transports.

use trapp::prelude::*;
use trapp_core::refresh::iterative::IterativeHeuristic;
use trapp_core::{ExecutionMode, SolverStrategy, TableOracle};
use trapp_storage::Table;
use trapp_types::{ObjectId, SourceId, TupleId};
use trapp_workload::figure2;
use trapp_workload::netmon::{self, NetworkConfig};
use trapp_workload::stocks::{self, StockConfig};

#[test]
fn paper_worked_examples_via_public_api() {
    for ex in figure2::worked_examples() {
        let mut session = QuerySession::new(figure2::links_table());
        session.config.strategy = SolverStrategy::Exact;
        let mut oracle = TableOracle::from_table(figure2::master_table());
        let r = session.execute_sql(ex.sql, &mut oracle).unwrap();
        assert!(r.satisfied, "{}", ex.id);
        assert!(
            (r.answer.range.lo() - ex.expect_final.0).abs() < 1e-9
                && (r.answer.range.hi() - ex.expect_final.1).abs() < 1e-9,
            "{}: {} vs {:?}",
            ex.id,
            r.answer,
            ex.expect_final
        );
    }
}

/// Every strategy and mode must satisfy the constraint and contain the true
/// answer; only cost differs.
#[test]
fn all_strategies_guarantee_the_constraint() {
    let network = netmon::generate(&NetworkConfig {
        nodes: 30,
        extra_links: 40,
        ..NetworkConfig::default()
    });
    let queries = [
        "SELECT SUM(latency) WITHIN 20 FROM links",
        "SELECT AVG(latency) WITHIN 2 FROM links WHERE traffic > 250",
        "SELECT MIN(bandwidth) WITHIN 15 FROM links WHERE on_path = TRUE",
        "SELECT MAX(traffic) WITHIN 10 FROM links",
        "SELECT COUNT(*) WITHIN 1 FROM links WHERE latency > 25",
    ];
    let truth = |sql: &str| {
        let (_, master) = network.build_tables();
        let mut s = QuerySession::new(master);
        let mut o = TableOracle::from_table(network.build_tables().1);
        s.execute_sql(sql, &mut o).unwrap().answer
    };
    for sql in queries {
        let expected = truth(sql);
        assert!(expected.is_exact());
        for (strategy, mode) in [
            (SolverStrategy::Exact, ExecutionMode::Batch),
            (SolverStrategy::Fptas(0.1), ExecutionMode::Batch),
            (SolverStrategy::Fptas(0.01), ExecutionMode::Batch),
            (SolverStrategy::GreedyDensity, ExecutionMode::Batch),
            (
                SolverStrategy::Exact,
                ExecutionMode::Iterative(IterativeHeuristic::BestRatio),
            ),
            (
                SolverStrategy::Exact,
                ExecutionMode::Iterative(IterativeHeuristic::CheapestFirst),
            ),
        ] {
            let (cache, master) = network.build_tables();
            let mut s = QuerySession::new(cache);
            s.config.strategy = strategy;
            s.config.mode = mode;
            let mut o = TableOracle::from_table(master);
            let r = s.execute_sql(sql, &mut o).unwrap();
            assert!(r.satisfied, "{sql} with {strategy} {mode:?}");
            assert!(
                r.answer.range.lo() <= expected.range.lo() + 1e-9
                    && expected.range.hi() <= r.answer.range.hi() + 1e-9,
                "{sql} with {strategy}: {} should contain truth {}",
                r.answer,
                expected
            );
        }
    }
}

/// Exact planning is never more expensive than approximate planning, and
/// tighter constraints never get cheaper (the Figure 6 shape, end to end).
#[test]
fn cost_orderings_hold_end_to_end() {
    let days = stocks::generate(&StockConfig {
        symbols: 40,
        ..StockConfig::default()
    });
    let mut last_cost = f64::INFINITY;
    for r in [5.0, 20.0, 60.0, 150.0] {
        let sql = format!("SELECT SUM(price) WITHIN {r} FROM stocks");
        let (cache, master) = stocks::build_tables(&days);
        let mut s = QuerySession::new(cache);
        s.config.strategy = SolverStrategy::Exact;
        let mut o = TableOracle::from_table(master);
        let exact_cost = s.execute_sql(&sql, &mut o).unwrap().refresh_cost;

        let (cache, master) = stocks::build_tables(&days);
        let mut s = QuerySession::new(cache);
        s.config.strategy = SolverStrategy::Fptas(0.1);
        let mut o = TableOracle::from_table(master);
        let fptas_cost = s.execute_sql(&sql, &mut o).unwrap().refresh_cost;

        assert!(exact_cost <= fptas_cost + 1e-9, "R={r}");
        assert!(exact_cost <= last_cost + 1e-9, "cost must fall as R grows");
        last_cost = exact_cost;
    }
}

/// The full system path: simulation with √t bounds, drift, and queries.
#[test]
fn system_simulation_answers_contain_master_truth() {
    use trapp_storage::{ColumnDef, Schema};
    use trapp_types::{BoundedValue, Value, ValueType};

    let mut sim = trapp_system::Simulation::builder()
        .initial_width(1.0)
        .build()
        .unwrap();
    sim.add_source(SourceId::new(1));
    let schema = Schema::new(vec![
        ColumnDef::exact("name", ValueType::Str),
        ColumnDef::bounded_float("v"),
    ])
    .unwrap();
    sim.add_table(Table::new("t", schema)).unwrap();
    let n = 8usize;
    let mut values: Vec<f64> = (0..n).map(|i| 10.0 * (i + 1) as f64).collect();
    for (i, v) in values.iter().enumerate() {
        sim.add_row(
            "t",
            SourceId::new(1),
            vec![
                BoundedValue::Exact(Value::Str(format!("o{i}"))),
                BoundedValue::exact_f64(*v).unwrap(),
            ],
        )
        .unwrap();
    }

    // Deterministic drift + queries; after each query, compare with ground
    // truth computed from the driven values.
    for tick in 1..=60u64 {
        sim.clock.advance(1.0);
        for (i, v) in values.iter_mut().enumerate() {
            *v += ((tick as f64 + i as f64) * 0.7).sin(); // bounded drift
            sim.apply_update(ObjectId::new(i as u64 + 1), *v).unwrap();
        }
        if tick % 10 == 0 {
            let r = sim.run_query("SELECT SUM(v) WITHIN 4 FROM t").unwrap();
            assert!(r.satisfied);
            let truth: f64 = values.iter().sum();
            assert!(
                r.answer.range.contains(truth) || (truth - r.answer.range.midpoint()).abs() < 1e-6,
                "tick {tick}: {} missing {truth}",
                r.answer
            );
            assert!(r.answer.width() <= 4.0 + 1e-9);
        }
    }
    let stats = sim.stats();
    assert_eq!(stats.queries, 6);
    assert!(stats.total_refreshes() > 0);
}

/// Group-by over the network workload: group answers partition the table
/// and each meets the constraint.
#[test]
fn group_by_partitions_and_satisfies() {
    let network = netmon::generate(&NetworkConfig {
        nodes: 12,
        extra_links: 20,
        ..NetworkConfig::default()
    });
    let (cache, master) = network.build_tables();
    let total = cache.len() as f64;
    let mut s = QuerySession::new(cache);
    let mut o = TableOracle::from_table(master);
    let q = parse_query("SELECT COUNT(*) FROM links GROUP BY from_node").unwrap();
    let groups = s.execute_grouped(&q, &mut o).unwrap();
    let sum: f64 = groups.iter().map(|g| g.result.answer.range.lo()).sum();
    assert_eq!(sum, total);

    let q = parse_query("SELECT SUM(latency) WITHIN 3 FROM links GROUP BY on_path").unwrap();
    let groups = s.execute_grouped(&q, &mut o).unwrap();
    assert_eq!(groups.len(), 2);
    for g in groups {
        assert!(g.result.satisfied);
        assert!(g.result.answer.width() <= 3.0 + 1e-9);
    }
}

/// Join queries across two replicated tables converge and contain truth.
#[test]
fn join_query_end_to_end_contains_truth() {
    use trapp_storage::{Catalog, ColumnDef, Schema};
    use trapp_types::{BoundedValue, Value, ValueType};

    let regions_schema = Schema::new(vec![
        ColumnDef::exact("region_id", ValueType::Int),
        ColumnDef::bounded_float("temperature"),
    ])
    .unwrap();
    let sites_schema = Schema::new(vec![
        ColumnDef::exact("rid", ValueType::Int),
        ColumnDef::bounded_float("power"),
    ])
    .unwrap();

    let mut regions = Table::new("regions", regions_schema.clone());
    let mut regions_m = Table::new("regions", regions_schema);
    for (id, t) in [(1i64, 20.0), (2, 30.0)] {
        regions
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(id)),
                    BoundedValue::bounded(t - 5.0, t + 5.0).unwrap(),
                ],
                2.0,
            )
            .unwrap();
        regions_m
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(id)),
                    BoundedValue::exact_f64(t).unwrap(),
                ],
                2.0,
            )
            .unwrap();
    }
    let mut sites = Table::new("sites", sites_schema.clone());
    let mut sites_m = Table::new("sites", sites_schema);
    let site_rows = [(1i64, 100.0), (1, 150.0), (2, 200.0), (2, 250.0)];
    for (rid, p) in site_rows {
        sites
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(rid)),
                    BoundedValue::bounded(p - 20.0, p + 20.0).unwrap(),
                ],
                3.0,
            )
            .unwrap();
        sites_m
            .insert_with_cost(
                vec![
                    BoundedValue::Exact(Value::Int(rid)),
                    BoundedValue::exact_f64(p).unwrap(),
                ],
                3.0,
            )
            .unwrap();
    }

    let mut cache = Catalog::new();
    cache.add_table(regions).unwrap();
    cache.add_table(sites).unwrap();
    let mut master = Catalog::new();
    master.add_table(regions_m).unwrap();
    master.add_table(sites_m).unwrap();

    let mut s = QuerySession::with_catalog(cache);
    let mut o = TableOracle::new(master);
    // SUM of power for warm regions: truth = 200 + 250 = 450 (region 2).
    let r = s
        .execute_sql(
            "SELECT SUM(power) WITHIN 10 FROM sites, regions \
             WHERE rid = region_id AND temperature > 25",
            &mut o,
        )
        .unwrap();
    assert!(r.satisfied);
    assert!(r.answer.range.contains(450.0), "{}", r.answer);
    assert!(r.answer.width() <= 10.0 + 1e-9);
}

/// Insertions and deletions propagate eagerly (§3): COUNT without a
/// predicate stays exact across them.
#[test]
fn eager_insert_delete_keeps_count_exact() {
    let mut session = QuerySession::new(figure2::links_table());
    let mut oracle = TableOracle::from_table(figure2::master_table());
    let r = session
        .execute_sql("SELECT COUNT(*) FROM links", &mut oracle)
        .unwrap();
    assert_eq!(r.answer.range.lo(), 6.0);
    assert!(r.answer.is_exact());

    session
        .catalog_mut()
        .table_mut("links")
        .unwrap()
        .delete(TupleId::new(3))
        .unwrap();
    let r = session
        .execute_sql("SELECT COUNT(*) FROM links", &mut oracle)
        .unwrap();
    assert_eq!(r.answer.range.lo(), 5.0);
    assert!(r.answer.is_exact());
}
