//! Quickstart: bounded aggregation queries with precision constraints.
//!
//! Builds the paper's Figure 2 network-monitoring table, then answers the
//! running-example queries at different precision constraints to show the
//! precision-performance tradeoff in action.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use trapp::prelude::*;
use trapp_core::SolverStrategy;
use trapp_workload::figure2;

fn main() -> Result<(), TrappError> {
    // The cache holds bounds [L, H]; the "sources" are stood in for by a
    // master table served through a TableOracle.
    let mut session = QuerySession::new(figure2::links_table());
    session.config.strategy = SolverStrategy::Exact;
    let mut oracle = trapp_core::TableOracle::from_table(figure2::master_table());

    println!("TRAPP quickstart — Figure 2 network monitoring table\n");

    // 1. A query answered entirely from cache: no precision constraint.
    let r = session.execute_sql("SELECT SUM(latency) FROM links", &mut oracle)?;
    println!("total latency, cache only:        {}  (cost 0)", r.answer);

    // 2. The same query, but demand a bound no wider than 5 ms: TRAPP
    //    combines cached bounds with the cheapest refresh set (knapsack).
    let r = session.execute_sql("SELECT SUM(latency) WITHIN 5 FROM links", &mut oracle)?;
    println!(
        "total latency WITHIN 5:           {}  (cost {}, refreshed {:?})",
        r.answer,
        r.refresh_cost,
        r.refreshed.iter().map(|(_, t)| t.raw()).collect::<Vec<_>>()
    );

    // 3. Aggregation with a selection predicate over bounded columns:
    //    tuples classify into certain / possible / excluded (T+/T?/T−).
    //    Note: refreshes persist in the cache, so queries after step 2 may
    //    already be satisfied for free — refreshed cells have zero width.
    let r = session.execute_sql(
        "SELECT AVG(latency) WITHIN 2 FROM links WHERE traffic > 100",
        &mut oracle,
    )?;
    println!(
        "avg latency of busy links ±1:     {}  (cost {})",
        r.answer, r.refresh_cost
    );

    // 4. WITHIN 0 forces an exact answer (precise mode); omitting WITHIN is
    //    pure cache (imprecise mode). Everything between is the tradeoff.
    let r = session.execute_sql("SELECT MIN(bandwidth) WITHIN 0 FROM links", &mut oracle)?;
    println!(
        "exact bottleneck bandwidth:       {}  (cost {})",
        r.answer, r.refresh_cost
    );

    // 5. Queries parse to a plain AST you can inspect.
    let q = parse_query("SELECT COUNT(*) WITHIN 1 FROM links WHERE latency > 10")?;
    println!("\nparsed: {q}");
    let r = session.execute(&q, &mut oracle)?;
    println!(
        "high-latency link count:          {}  (cost {})",
        r.answer, r.refresh_cost
    );

    Ok(())
}
