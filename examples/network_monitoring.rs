//! The paper's §1.1 scenario end-to-end: a monitoring station (cache)
//! watching a network of sources whose link metrics drift as random walks.
//!
//! Demonstrates the full TRAPP architecture of Figure 3: subscriptions
//! install √t bound functions; drifting values trigger value-initiated
//! refreshes; administrator queries with precision constraints trigger
//! query-initiated refreshes; adaptive width control balances the two.
//!
//! ```sh
//! cargo run --release --example network_monitoring
//! ```

use trapp_storage::Table;
use trapp_types::{BoundedValue, ObjectId, SourceId, TrappError, Value};
use trapp_workload::netmon::{self, NetworkConfig};

fn main() -> Result<(), TrappError> {
    // A 12-node network; each link's metrics live at its destination node
    // (the paper: "precise master values ... are measured and stored at the
    // link-to node"), so sources = nodes.
    let config = NetworkConfig {
        nodes: 12,
        extra_links: 8,
        bound_slack: 0.1,
        seed: 3,
    };
    let network = netmon::generate(&config);

    let mut sim = trapp_system::Simulation::builder()
        .initial_width(2.0)
        .build()?;
    for node in 0..config.nodes {
        sim.add_source(SourceId::new(node as u64 + 1));
    }
    sim.add_table(Table::new("links", netmon::schema()))?;

    // Register each link's three metrics as replicated objects at the
    // destination node's source.
    for link in &network.links {
        sim.add_row(
            "links",
            SourceId::new(link.to as u64 + 1),
            vec![
                BoundedValue::Exact(Value::Int(link.from as i64)),
                BoundedValue::Exact(Value::Int(link.to as i64)),
                BoundedValue::exact_f64(link.metrics[0])?,
                BoundedValue::exact_f64(link.metrics[1])?,
                BoundedValue::exact_f64(link.metrics[2])?,
                BoundedValue::Exact(Value::Bool(link.on_path)),
            ],
        )?;
    }

    println!(
        "monitoring {} links across {} nodes\n",
        network.links.len(),
        config.nodes
    );

    // Drive 100 ticks of drift; ask administrator queries periodically.
    let updates = network.update_stream(100, 5, 0.02, 17);
    let mut cursor = 0usize;
    for tick in 1..=100u64 {
        sim.clock.advance(1.0);
        while cursor < updates.len() && updates[cursor].0 < tick as f64 {
            let (_, li, mi, v) = updates[cursor];
            // Object ids were assigned in insertion order: 3 per link.
            let object = ObjectId::new((li * 3 + mi) as u64 + 1);
            sim.apply_update(object, v)?;
            cursor += 1;
        }

        if tick % 25 == 0 {
            println!("— tick {tick} —");
            let bottleneck =
                sim.run_query("SELECT MIN(bandwidth) WITHIN 25 FROM links WHERE on_path = TRUE")?;
            println!(
                "  Q1 bottleneck bandwidth: {} (cost {:.0})",
                bottleneck.answer, bottleneck.refresh_cost
            );
            let latency =
                sim.run_query("SELECT SUM(latency) WITHIN 10 FROM links WHERE on_path = TRUE")?;
            println!(
                "  Q2 path latency:         {} (cost {:.0})",
                latency.answer, latency.refresh_cost
            );
            let avg_traffic = sim.run_query("SELECT AVG(traffic) WITHIN 15 FROM links")?;
            println!(
                "  Q3 avg traffic:          {} (cost {:.0})",
                avg_traffic.answer, avg_traffic.refresh_cost
            );
            let busy = sim.run_query("SELECT COUNT(*) WITHIN 2 FROM links WHERE traffic > 300")?;
            println!(
                "  Q5 busy links:           {} (cost {:.0})",
                busy.answer, busy.refresh_cost
            );
        }
    }

    println!("\nsystem statistics: {}", sim.stats());
    println!(
        "(value-initiated refreshes come from drift escaping bounds; query-initiated\n\
         ones from precision constraints — the adaptive widths balance the two)"
    );
    Ok(())
}
