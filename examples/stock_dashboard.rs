//! A stock "dashboard" over the §5.2.1 workload: 90 symbols cached as
//! day-range bounds, queried at different precision levels.
//!
//! Shows the user-facing side of the tradeoff: the same portfolio-value
//! query costs nothing when ±$200 is acceptable and progressively more as
//! the analyst tightens the constraint — plus a relative-precision query
//! (§8.1) and a grouped breakdown.
//!
//! ```sh
//! cargo run --release --example stock_dashboard
//! ```

use trapp_core::refresh::iterative::IterativeHeuristic;
use trapp_core::{ExecutionMode, QuerySession, SolverStrategy, TableOracle};
use trapp_sql::parse_query;
use trapp_types::TrappError;
use trapp_workload::stocks::{build_tables, generate, StockConfig};

fn main() -> Result<(), TrappError> {
    let config = StockConfig::default();
    let days = generate(&config);
    let total_range: f64 = days.iter().map(|d| d.high - d.low).sum();
    println!(
        "dashboard over {} symbols; total day-range uncertainty ${:.0}\n",
        days.len(),
        total_range
    );

    // Sweep the portfolio-value precision constraint.
    println!("portfolio value (SUM of prices) at decreasing tolerance:");
    println!(
        "{:>10}  {:>24}  {:>6}  {:>10}",
        "WITHIN $", "bounded answer", "cost", "refreshes"
    );
    for r in [total_range, 200.0, 100.0, 50.0, 20.0, 5.0, 0.0] {
        let (cache, master) = build_tables(&days);
        let mut session = QuerySession::new(cache);
        session.config.strategy = SolverStrategy::Fptas(0.1);
        let mut oracle = TableOracle::from_table(master);
        let res = session.execute_sql(
            &format!("SELECT SUM(price) WITHIN {r} FROM stocks"),
            &mut oracle,
        )?;
        println!(
            "{:>10.0}  [{:>9.2}, {:>9.2}]  {:>6.0}  {:>10}",
            r,
            res.answer.range.lo(),
            res.answer.range.hi(),
            res.refresh_cost,
            res.refreshed.len()
        );
    }

    // Relative precision: "the average price to within 1%".
    let (cache, master) = build_tables(&days);
    let mut session = QuerySession::new(cache);
    let mut oracle = TableOracle::from_table(master);
    let q = parse_query("SELECT AVG(price) FROM stocks")?;
    let res = session.execute_relative(&q, 0.01, &mut oracle)?;
    println!(
        "\navg price within ±1% (relative): {} (cost {:.0})",
        res.answer, res.refresh_cost
    );

    // Online mode: watch the bound tighten one refresh at a time.
    let (cache, master) = build_tables(&days);
    let mut session = QuerySession::new(cache);
    session.config.mode = ExecutionMode::Iterative(IterativeHeuristic::BestRatio);
    let mut oracle = TableOracle::from_table(master);
    let res = session.execute_sql("SELECT SUM(price) WITHIN 25 FROM stocks", &mut oracle)?;
    println!(
        "iterative SUM WITHIN 25: {} after {} rounds (cost {:.0} vs batch plan)",
        res.answer, res.rounds, res.refresh_cost
    );

    // Extremes of the market, cheap thanks to MIN/MAX's threshold rule.
    let (cache, master) = build_tables(&days);
    let mut session = QuerySession::new(cache);
    let mut oracle = TableOracle::from_table(master);
    let hi = session.execute_sql("SELECT MAX(price) WITHIN 1 FROM stocks", &mut oracle)?;
    let lo = session.execute_sql("SELECT MIN(price) WITHIN 1 FROM stocks", &mut oracle)?;
    println!(
        "max price: {} (cost {:.0});  min price: {} (cost {:.0})",
        hi.answer, hi.refresh_cost, lo.answer, lo.refresh_cost
    );

    Ok(())
}
