//! Online aggregation behaviour (§8.2): watch a bounded answer tighten
//! monotonically, one refresh round at a time, until the precision
//! constraint is met — the TRAPP take on the CONTROL project's progressive
//! query answers the paper cites ([HAC+99]).
//!
//! Uses the iterative executor mode's building blocks directly so each
//! round's intermediate bound can be displayed.
//!
//! ```sh
//! cargo run --release --example online_aggregation
//! ```

use trapp_core::agg::{bounded_answer, AggInput, Aggregate};
use trapp_core::refresh::iterative::{next_refresh, IterativeHeuristic};
use trapp_core::{QuerySession, RefreshOracle, TableOracle};
use trapp_expr::{ColumnRef, Expr};
use trapp_types::TrappError;
use trapp_workload::stocks::{build_tables, generate, StockConfig};

fn main() -> Result<(), TrappError> {
    let days = generate(&StockConfig {
        symbols: 40,
        ..StockConfig::default()
    });
    let (cache, master) = build_tables(&days);
    let price = Expr::Column(ColumnRef::bare("price")).bind(cache.schema())?;
    let r = 8.0;

    let mut session = QuerySession::new(cache);
    let mut oracle = TableOracle::from_table(master);

    println!("online SUM(price) WITHIN {r} over 40 cached stocks\n");
    println!(
        "{:>5}  {:>26}  {:>9}  {:>10}",
        "round", "bound", "width", "spent"
    );

    let mut spent = 0.0;
    for round in 0.. {
        let input = AggInput::build(session.catalog().table("stocks")?, None, Some(&price))?;
        let answer = bounded_answer(Aggregate::Sum, &input)?;
        let bar = "#".repeat((answer.width() / 2.0).ceil() as usize);
        println!(
            "{round:>5}  [{:>10.2}, {:>10.2}]  {:>9.3}  {:>10.0}  {bar}",
            answer.range.lo(),
            answer.range.hi(),
            answer.width(),
            spent
        );
        if answer.width() <= r {
            println!("\nconstraint met after {round} rounds (cost {spent:.0}).");
            break;
        }
        let Some(tid) = next_refresh(Aggregate::Sum, &input, r, IterativeHeuristic::BestRatio)
        else {
            println!("\nno further refresh can improve the bound.");
            break;
        };
        // Ask the source for the master value and pin it in the cache —
        // the user sees the bound shrink on the next line.
        let columns = [trapp_workload::stocks::PRICE];
        let values = oracle.refresh("stocks", tid, &columns)?;
        session
            .catalog_mut()
            .table_mut("stocks")?
            .refresh_cell(tid, columns[0], values[0])?;
        spent += session.catalog().table("stocks")?.cost(tid)?;
    }
    Ok(())
}
