//! Stand up the **sharded** query service — four caches, group key space
//! hash-partitioned — drive it with the zipfian load generator from eight
//! client threads, and print the stats snapshot. The README quickstart,
//! runnable as `cargo run --example query_service`.

use trapp::prelude::*;
use trapp::workload::loadgen::{self, LoadConfig};

fn main() -> Result<(), TrappError> {
    // A zipfian serving workload: 16 groups × 6 rows over 4 sources, 128
    // queries mixing COUNT/SUM/AVG/MIN with mostly-tight precision
    // constraints. One query in ten has no group predicate — those span
    // every shard and are answered by scatter-gather.
    let workload = loadgen::generate(&LoadConfig {
        queries: 128,
        global_fraction: 0.1,
        ..LoadConfig::default()
    });

    // The service: 8 workers over 4 cache shards (rows placed by hashing
    // the `grp` column), refresh coalescing and batched source
    // round-trips on within every shard.
    let mut builder = ServiceBuilder::new()
        .config(ServiceConfig {
            workers: 8,
            shards: 4,
            ..ServiceConfig::default()
        })
        .partition_by("grp")
        .table(loadgen::table());
    for row in &workload.rows {
        builder = builder.row("metrics", row.source, row.cells.clone());
    }
    // The threaded transport simulates 500µs per source round-trip — the
    // regime where batching, coalescing, and shard parallelism pay.
    let service = builder.build_channel(std::time::Duration::from_micros(500))?;

    // Let the bounds widen so tight queries must refresh, then serve the
    // stream from eight concurrent clients.
    service.advance_clock(25.0);
    let per_client = workload.queries.len().div_ceil(8);
    let service_ref = &service;
    std::thread::scope(|scope| {
        for (client, chunk) in workload.queries.chunks(per_client).enumerate() {
            scope.spawn(move || {
                for q in chunk {
                    let reply = service_ref.query(&q.sql).expect("query runs");
                    assert!(reply.result.satisfied);
                    if reply.refreshes_saved > 0 {
                        println!(
                            "client {client}: {} -> {} (saved {} refreshes)",
                            q.sql, reply.result.answer, reply.refreshes_saved
                        );
                    }
                }
            });
        }
    });

    let stats = service.stats();
    println!(
        "\nservice stats ({} shards): {stats:?}",
        service.shard_count()
    );
    assert_eq!(stats.queries, workload.queries.len() as u64);
    assert!(stats.scatter_queries > 0, "global queries scatter-gather");
    Ok(())
}
