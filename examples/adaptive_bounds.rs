//! Bound functions and adaptive width control (§3.2, Appendix A).
//!
//! Follows one replicated value through time: the √t bound widens between
//! refreshes, value-initiated refreshes fire when the random walk escapes,
//! query-initiated refreshes fire when queries need precision — and the
//! width parameter adapts (×2 on escape, ×0.7 on pull) toward the
//! workload's middle ground.
//!
//! ```sh
//! cargo run --release --example adaptive_bounds
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use trapp_bounds::walk::{chebyshev_width_param, estimate_step_size};
use trapp_bounds::BoundShape;
use trapp_storage::{ColumnDef, Schema, Table};
use trapp_types::{BoundedValue, ObjectId, SourceId, TrappError, Value, ValueType};

fn main() -> Result<(), TrappError> {
    // Derive a principled initial width from the walk's statistics
    // (Appendix A): W = s/√P for escape probability P.
    let mut rng = StdRng::seed_from_u64(5);
    let samples: Vec<f64> = {
        let mut v = 100.0;
        (0..200)
            .map(|_| {
                v += rng.gen_range(-0.5..=0.5);
                v
            })
            .collect()
    };
    let s = estimate_step_size(&samples).expect("enough samples");
    let w0 = chebyshev_width_param(s, 0.05)?;
    println!("estimated step size s = {s:.3}; Chebyshev width for P = 5%: W = {w0:.3}\n");

    let mut sim = trapp_system::Simulation::builder()
        .shape(BoundShape::Sqrt)
        .initial_width(w0)
        .build()?;
    sim.add_source(SourceId::new(1));
    let schema = Schema::new(vec![
        ColumnDef::exact("name", ValueType::Str),
        ColumnDef::bounded_float("value"),
    ])?;
    sim.add_table(Table::new("series", schema))?;
    sim.add_row(
        "series",
        SourceId::new(1),
        vec![
            BoundedValue::Exact(Value::Str("walker".into())),
            BoundedValue::exact_f64(100.0)?,
        ],
    )?;

    // Phase 1: updates only — bounds absorb the drift, occasional escapes.
    let mut value = 100.0;
    for _ in 0..200 {
        sim.clock.advance(1.0);
        value += rng.gen_range(-0.5..=0.5);
        sim.apply_update(ObjectId::new(1), value)?;
    }
    let after_updates = sim.stats();
    println!("after 200 update-only ticks:   {after_updates}");

    // Phase 2: a demanding query every tick — widths shrink to serve them.
    for _ in 0..50 {
        sim.clock.advance(1.0);
        value += rng.gen_range(-0.5..=0.5);
        sim.apply_update(ObjectId::new(1), value)?;
        let r = sim.run_query("SELECT SUM(value) WITHIN 0.5 FROM series")?;
        assert!(r.satisfied);
    }
    let after_queries = sim.stats();
    println!("after 50 query-heavy ticks:    {after_queries}");

    // Phase 3: updates only again. Whether escapes continue depends on
    // where the tug-of-war between phase-2 shrinks (×0.7 per pull) and
    // escape doublings (×2) left the width: the √t bound shape grows at
    // the same rate as the walk's standard deviation, so a width parameter
    // a small factor above the step size already makes escapes rare.
    for _ in 0..200 {
        sim.clock.advance(1.0);
        value += rng.gen_range(-0.5..=0.5);
        sim.apply_update(ObjectId::new(1), value)?;
    }
    let end = sim.stats();
    println!("after 200 more update ticks:   {end}");

    println!(
        "\nphase deltas — value-initiated: {} / {} / {}; query-initiated: {} / {} / {}",
        after_updates.value_initiated,
        after_queries.value_initiated - after_updates.value_initiated,
        end.value_initiated - after_queries.value_initiated,
        after_updates.query_initiated,
        after_queries.query_initiated - after_updates.query_initiated,
        end.query_initiated - after_queries.query_initiated,
    );
    println!("the controller widens after escapes and narrows under query pressure (Appendix A).");
    Ok(())
}
